"""LSH Forest (Bawa, Condie, Ganesan 2005): self-tuning top-k similarity search.

An LSH Forest stores each item in ``num_trees`` prefix trees; each tree keys
the item by a fixed-length slice of signature positions.  Top-k queries
descend from the longest prefix to shorter ones, so the number of candidates
adapts to the query rather than to a global threshold — this is the property
the paper relies on to keep search time largely independent of lake size.

Performance architecture
------------------------

Each :class:`_PrefixTree` uses the sorted-array layout the LSH Forest paper
prescribes, vectorized with NumPy:

* keys are a single sorted 2D ``uint64`` array of shape ``(n, key_length)``
  with a parallel item list, kept in lexicographic order;
* the lexicographic order is materialised once per (re)build as a 1D array of
  big-endian byte *rank keys* (a NumPy void dtype of ``key_length * 8``
  bytes), so one ``query_prefix`` is two ``np.searchsorted`` calls —
  O(log n) — instead of the seed implementation's O(n) rebuild of a Python
  key list on every call;
* inserts are buffered and merged with one stable vectorized sort on the
  next query (amortised O(log n) per insert for the usual build-then-query
  workload);
* removals are O(1) tombstones; the tree compacts — dropping dead rows and
  rebuilding the rank keys — once more than half of its rows are dead, so
  remove costs O(log n) amortised and queries never scan dead entries
  outside a compaction cycle.

:meth:`LSHForest.query` additionally tracks, per tree, the row range matched
at the previous (longer) prefix level.  Because the range matched by a
shorter prefix always contains the longer-prefix range, each level only
enumerates the *newly* exposed rows; a full descent touches every candidate
row at most once instead of once per level.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

#: Serialises deferred merges (:meth:`_PrefixTree._ensure_flushed` /
#: :meth:`_PrefixTree.compact`): the first *query* after a buffered insert
#: performs the merge, and the serving tier runs many queries concurrently —
#: without this, two readers could rebuild one tree at the same time.  The
#: lock is module-level (no per-tree pickling concerns) and only ever
#: contended in the instant after a mutation; the no-pending fast path never
#: takes it.
_FLUSH_LOCK = threading.Lock()

#: Fill value for the upper bound of a prefix range.  Signature values are at
#: most 32 bits, so the all-ones 64-bit pattern is strictly larger than any
#: real key suffix.
_KEY_MAX = np.uint64(np.iinfo(np.uint64).max)

#: A tree compacts when it holds more than this many tombstones *and* they
#: outnumber the live rows.
_MIN_TOMBSTONES_BEFORE_COMPACTION = 16


@lru_cache(maxsize=None)
def _prefix_mask(key_length: int) -> np.ndarray:
    """Row ``p - 1`` is True on the first ``p`` positions (prefix selector)."""
    mask = np.tril(np.ones((key_length, key_length), dtype=bool))
    mask.setflags(write=False)
    return mask


def rank_key_bytes(keys: np.ndarray) -> np.ndarray:
    """Big-endian rank-key bytes of sorted key rows: ``(n, key_length * 8)`` uint8.

    The byte layout matches the void-dtype rank keys a :class:`_PrefixTree`
    materialises internally, so a tree state exported together with these
    bytes can be re-imported without recomputing the ranks — the shared-memory
    snapshot layer (:mod:`repro.core.shared`) stores them next to the key
    arrays and workers adopt both as views.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.ndim != 2:
        raise ValueError(f"expected a 2D key array, got shape {keys.shape}")
    rows, key_length = keys.shape
    return np.ascontiguousarray(keys.astype(">u8")).view(np.uint8).reshape(
        rows, key_length * 8
    )


class _PrefixTree:
    """One tree of the forest: keys in a sorted column-major NumPy array.

    ``_keys`` (``(n, key_length)`` uint64) and ``_items`` are parallel and
    ordered by ``_ranks``, the precomputed lexicographic rank keys.
    ``_alive`` marks tombstoned rows; ``_pending`` buffers inserts until the
    next query forces a merge.
    """

    def __init__(self, key_length: int) -> None:
        self.key_length = key_length
        self._rank_dtype = np.dtype((np.void, key_length * 8))
        self._keys = np.empty((0, key_length), dtype=np.uint64)
        self._ranks = np.empty(0, dtype=self._rank_dtype)
        self._items: List[Hashable] = []
        self._alive = np.empty(0, dtype=bool)
        self._dead = 0
        self._pending: List[Tuple[np.ndarray, Hashable]] = []
        self._row_of: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._items) - self._dead + len(self._pending)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, key: np.ndarray, item: Hashable) -> None:
        self._pending.append((np.ascontiguousarray(key, dtype=np.uint64), item))

    def remove(self, item: Hashable) -> None:
        row = self._row_of.pop(item, None)
        if row is not None:
            self._alive[row] = False
            self._dead += 1
            if (
                self._dead > _MIN_TOMBSTONES_BEFORE_COMPACTION
                and self._dead * 2 > len(self._items)
            ):
                self._rebuild()
            return
        for index, (_, pending_item) in enumerate(self._pending):
            if pending_item == item:
                del self._pending[index]
                return

    def remove_batch(self, items: Sequence[Hashable]) -> None:
        """Tombstone many items with one compaction check at the end.

        Same final state as calling :meth:`remove` per item — the rebuild
        is a pure function of the surviving ``(key, item)`` set — but a
        burst of removals can no longer trigger a cascade of mid-burst
        compaction rebuilds.
        """
        for item in items:
            row = self._row_of.pop(item, None)
            if row is not None:
                self._alive[row] = False
                self._dead += 1
                continue
            for index, (_, pending_item) in enumerate(self._pending):
                if pending_item == item:
                    del self._pending[index]
                    break
        if (
            self._dead > _MIN_TOMBSTONES_BEFORE_COMPACTION
            and self._dead * 2 > len(self._items)
        ):
            self._rebuild()

    def _rank_keys(self, keys: np.ndarray) -> np.ndarray:
        """Big-endian byte views of key rows; compare lexicographically."""
        return np.ascontiguousarray(keys.astype(">u8")).view(self._rank_dtype).ravel()

    def _rebuild(self) -> None:
        """Merge pending inserts, drop tombstones, restore sorted order."""
        keep = np.flatnonzero(self._alive)
        keys = self._keys[keep]
        items = [self._items[row] for row in keep]
        if self._pending:
            pending_keys = np.vstack([key for key, _ in self._pending])
            keys = np.vstack([keys, pending_keys]) if keys.size else pending_keys
            items.extend(item for _, item in self._pending)
            self._pending = []
        if not items:
            self._keys = np.empty((0, self.key_length), dtype=np.uint64)
            self._ranks = np.empty(0, dtype=self._rank_dtype)
            self._items = []
            self._alive = np.empty(0, dtype=bool)
            self._dead = 0
            self._row_of = {}
            return
        ranks = self._rank_keys(keys)
        order = np.argsort(ranks, kind="stable")
        # Canonical tie order: rows sharing a key are ordered by their item.
        # This makes the layout a pure function of the (key, item) set — a
        # mutated tree compacts to exactly the state a from-scratch build of
        # the surviving items produces, so stop-at-k candidate truncation
        # stays identical across remove/re-add histories (the rebuild
        # determinism the incremental-mutation oracle relies on).  Only runs
        # of genuinely equal keys pay for a Python-level sort.
        sorted_ranks = ranks[order]
        if sorted_ranks.shape[0] > 1:
            run_starts = np.flatnonzero(
                np.concatenate(([True], sorted_ranks[1:] != sorted_ranks[:-1]))
            )
            if run_starts.shape[0] < sorted_ranks.shape[0]:
                run_ends = np.concatenate((run_starts[1:], [sorted_ranks.shape[0]]))
                for start, end in zip(run_starts.tolist(), run_ends.tolist()):
                    if end - start > 1:
                        order[start:end] = sorted(
                            order[start:end].tolist(), key=items.__getitem__
                        )
        self._keys = np.ascontiguousarray(keys[order])
        self._ranks = ranks[order]
        self._items = [items[row] for row in order]
        self._alive = np.ones(len(self._items), dtype=bool)
        self._dead = 0
        self._row_of = {item: row for row, item in enumerate(self._items)}

    def _ensure_flushed(self) -> None:
        if self._pending:
            with _FLUSH_LOCK:
                if self._pending:
                    self._rebuild()

    def compact(self) -> None:
        """Merge pending inserts and drop tombstones (sorted state, no dead rows)."""
        if self._pending or self._dead:
            with _FLUSH_LOCK:
                if self._pending or self._dead:
                    self._rebuild()

    def export_state(self, copy: bool = True) -> Tuple[np.ndarray, List[Hashable]]:
        """``(keys, items)`` of the compacted tree, in sorted key order.

        ``copy=False`` returns the live key array instead of a copy — for
        callers that only read it once into another buffer (the shared-memory
        snapshot writer); the array must not be mutated.
        """
        self.compact()
        return (self._keys.copy() if copy else self._keys), list(self._items)

    def import_state(
        self,
        keys: np.ndarray,
        items: List[Hashable],
        ranks: Optional[np.ndarray] = None,
    ) -> None:
        """Restore a state produced by :meth:`export_state` (replaces contents).

        ``keys`` must already be in lexicographic order (as exported).  When
        ``ranks`` (the :func:`rank_key_bytes` of the keys) is provided it is
        adopted as a view; otherwise the rank keys are re-materialised, which
        is a cheap vectorized byte conversion rather than a re-sort.  Both
        paths preserve array views: a contiguous ``keys`` array of the right
        dtype — e.g. a read-only view over a shared-memory segment — is
        adopted without copying.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.ndim != 2 or keys.shape != (len(items), self.key_length):
            raise ValueError(
                f"inconsistent prefix-tree state: keys {keys.shape}, {len(items)} items"
            )
        self._keys = keys
        if ranks is None:
            self._ranks = self._rank_keys(keys)
        else:
            ranks = np.ascontiguousarray(ranks, dtype=np.uint8)
            if ranks.shape != (len(items), self.key_length * 8):
                raise ValueError(
                    f"inconsistent prefix-tree rank state: ranks {ranks.shape}, "
                    f"{len(items)} items of key length {self.key_length}"
                )
            self._ranks = ranks.view(self._rank_dtype).reshape(len(items))
        self._items = list(items)
        self._alive = np.ones(len(self._items), dtype=bool)
        self._dead = 0
        self._pending = []
        self._row_of = {item: row for row, item in enumerate(self._items)}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def prefix_ranges(self, key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Row ranges for *every* prefix length in two batched searches.

        Entry ``p - 1`` of each returned array is the ``[low, high)`` range
        of prefix length ``p``; one ``searchsorted`` over all lower bounds
        and one over all upper bounds replace ``2 * key_length`` scalar
        searches per tree per query.
        """
        self._ensure_flushed()
        if not self._items:
            zeros = np.zeros(self.key_length, dtype=np.intp)
            return (zeros, zeros)
        mask = _prefix_mask(self.key_length)
        lows = np.where(mask, key[np.newaxis, :], np.uint64(0))
        highs = np.where(mask, key[np.newaxis, :], _KEY_MAX)
        low = np.searchsorted(self._ranks, self._rank_keys(lows), side="left")
        high = np.searchsorted(self._ranks, self._rank_keys(highs), side="right")
        return (low, high)

    def items_between(self, low: int, high: int) -> List[Hashable]:
        """Live items in rows ``[low, high)``, in key order."""
        if low >= high:
            return []
        if self._dead:
            rows = np.flatnonzero(self._alive[low:high])
            return [self._items[low + int(row)] for row in rows]
        return self._items[low:high]

    def query_prefix(self, key: np.ndarray, prefix_length: int) -> List[Hashable]:
        """All items whose key agrees with ``key`` on the first ``prefix_length`` positions."""
        if prefix_length <= 0:
            return []
        prefix_length = min(prefix_length, self.key_length)
        lows, highs = self.prefix_ranges(np.asarray(key, dtype=np.uint64))
        return self.items_between(int(lows[prefix_length - 1]), int(highs[prefix_length - 1]))

    def estimated_bytes(self) -> int:
        """Approximate footprint: keys, rank keys, and item references."""
        pending = len(self._pending) * (self.key_length * 8 + 8)
        return int(self._keys.nbytes + self._ranks.nbytes + 8 * len(self._items) + pending)


class LSHForest:
    """Top-k index over signature arrays.

    ``num_hashes`` positions of each signature are split across ``num_trees``
    trees, each using ``num_hashes // num_trees`` positions as its key.
    """

    def __init__(self, num_hashes: int = 256, num_trees: int = 8, seed: int = 11) -> None:
        if num_trees <= 0 or num_hashes <= 0:
            raise ValueError("num_hashes and num_trees must be positive")
        if num_hashes < num_trees:
            raise ValueError("num_hashes must be at least num_trees")
        self.num_hashes = num_hashes
        self.num_trees = num_trees
        self.key_length = num_hashes // num_trees
        self.seed = seed
        self._trees = [_PrefixTree(self.key_length) for _ in range(num_trees)]
        self._signatures: Dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    def _tree_keys(self, signature: np.ndarray) -> np.ndarray:
        """Per-tree key rows: shape ``(num_trees, key_length)`` uint64."""
        used = signature[: self.num_trees * self.key_length]
        return np.ascontiguousarray(
            used.astype(np.uint64, copy=False).reshape(self.num_trees, self.key_length)
        )

    def insert(self, key: Hashable, signature: np.ndarray) -> None:
        """Insert (or replace) an item keyed by ``key``."""
        signature = np.asarray(signature)
        if signature.shape[0] < self.num_hashes:
            raise ValueError(
                f"signature of length {signature.shape[0]} is shorter than num_hashes={self.num_hashes}"
            )
        if key in self._signatures:
            self.remove(key)
        self._signatures[key] = signature
        tree_keys = self._tree_keys(signature)
        for tree_index, tree in enumerate(self._trees):
            tree.insert(tree_keys[tree_index], key)

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` (no-op when absent)."""
        if key not in self._signatures:
            return
        del self._signatures[key]
        for tree in self._trees:
            tree.remove(key)

    def remove_batch(self, keys: Sequence[Hashable]) -> None:
        """Remove many keys with one tombstone pass per tree (absent: no-op).

        State-equivalent to per-key :meth:`remove` calls; each tree checks
        its compaction threshold once after the whole batch instead of
        after every removal.
        """
        present = [key for key in keys if key in self._signatures]
        if not present:
            return
        for key in present:
            del self._signatures[key]
        for tree in self._trees:
            tree.remove_batch(present)

    def signature(self, key: Hashable) -> np.ndarray:
        """Stored signature for ``key``."""
        return self._signatures[key]

    def query(
        self,
        signature: np.ndarray,
        k: int,
        exclude: Optional[Hashable] = None,
    ) -> List[Hashable]:
        """Return up to ``k`` candidate keys, most-specific prefixes first.

        Candidates are collected by descending prefix length; within a prefix
        length the order is arbitrary but deterministic.  The descent stops
        as soon as ``k`` candidates have been collected — mid-level, without
        scanning the remaining trees.  The caller is expected to re-rank
        candidates by estimated distance (as D3L does).
        """
        if k <= 0:
            return []
        signature = np.asarray(signature)
        tree_keys = self._tree_keys(signature)
        ranges = [
            tree.prefix_ranges(tree_keys[tree_index])
            for tree_index, tree in enumerate(self._trees)
        ]
        seen: Set[Hashable] = set()
        results: List[Hashable] = []
        # Row range each tree matched at the previous (longer) prefix level;
        # shorter prefixes only widen it, so only the new rows are enumerated.
        previous: List[Optional[Tuple[int, int]]] = [None] * self.num_trees
        for prefix_length in range(self.key_length, 0, -1):
            for tree_index, tree in enumerate(self._trees):
                lows, highs = ranges[tree_index]
                low = int(lows[prefix_length - 1])
                high = int(highs[prefix_length - 1])
                last = previous[tree_index]
                if last is None:
                    fresh = tree.items_between(low, high)
                elif (low, high) == last:
                    continue
                else:
                    fresh = tree.items_between(low, last[0])
                    fresh += tree.items_between(last[1], high)
                previous[tree_index] = (low, high)
                for item in fresh:
                    if item == exclude or item in seen:
                        continue
                    seen.add(item)
                    results.append(item)
                if len(results) >= k:
                    return results[:k]
        return results

    def query_all(self, signature: np.ndarray, exclude: Optional[Hashable] = None) -> List[Hashable]:
        """Return every key sharing at least the length-1 prefix in some tree."""
        return self.query(signature, k=len(self._signatures) + 1, exclude=exclude)

    def multi_query(
        self, signatures: List[Optional[np.ndarray]], k: int
    ) -> List[List[Hashable]]:
        """Candidate keys of many queries through shared per-tree passes.

        The candidate *set* of a full descent is the union, over the trees,
        of the rows matching the length-1 prefix (every longer prefix matches
        a nested subrange), so one batched ``searchsorted`` pair per tree
        covers every query at once — instead of one descent per query — and
        only the matched rows are ever enumerated, as in the scalar descent.
        The descent's item order and its stop-at-k truncation only matter
        when a query matches more than ``k`` distinct items, so exactly
        those queries fall back to the scalar :meth:`query`; every other
        entry contains the same candidates as ``query(signature, k)`` in
        unspecified order.  Callers that re-rank candidates (as all D3L
        lookups do) therefore observe identical answers.

        ``None`` signatures yield empty candidate lists.
        """
        results: List[List[Hashable]] = [[] for _ in signatures]
        if k <= 0:
            return results
        populated = [
            index for index, signature in enumerate(signatures) if signature is not None
        ]
        if not populated or not self._signatures:
            return results
        # Row t holds each query's first key position of tree t (the trees key
        # on consecutive signature slices, so tree t starts at t*key_length).
        first_keys = np.array(
            [
                [
                    np.asarray(signatures[index])[tree_index * self.key_length]
                    for index in populated
                ]
                for tree_index in range(self.num_trees)
            ],
            dtype=np.uint64,
        )
        matched_per_query: List[List[Hashable]] = [[] for _ in populated]
        for tree_index, tree in enumerate(self._trees):
            tree._ensure_flushed()
            if not tree._items:
                continue
            # The length-1 prefix range of every query in two searches: the
            # lower bound pads the first signature position with zeros, the
            # upper bound with the all-ones key-suffix sentinel.
            lows = np.zeros((len(populated), tree.key_length), dtype=np.uint64)
            lows[:, 0] = first_keys[tree_index]
            highs = np.full((len(populated), tree.key_length), _KEY_MAX, dtype=np.uint64)
            highs[:, 0] = first_keys[tree_index]
            low = np.searchsorted(tree._ranks, tree._rank_keys(lows), side="left")
            high = np.searchsorted(tree._ranks, tree._rank_keys(highs), side="right")
            for position in range(len(populated)):
                matched_per_query[position].extend(
                    tree.items_between(int(low[position]), int(high[position]))
                )
        for position, index in enumerate(populated):
            matched = matched_per_query[position]
            if not matched:
                continue
            # First-seen dedup keeps the enumeration deterministic (tree
            # order, then row order) without per-item hashing tricks.
            unique = list(dict.fromkeys(matched))
            if len(unique) > k:
                # More matches than the answer size: the scalar descent's
                # most-specific-prefix-first truncation decides which k win.
                results[index] = self.query(signatures[index], k)
            else:
                results[index] = unique
        return results

    def keys(self) -> List[Hashable]:
        """All inserted keys."""
        return list(self._signatures)

    def export_state(self, copy: bool = True) -> Dict[str, object]:
        """Raw-array state of the forest, suitable for persistence.

        Per-item signatures are deliberately *not* included: every D3L forest
        shares them with the evidence type's signature matrix, so the caller
        persists them once and passes them back to :meth:`import_state`.
        ``copy=False`` exposes the live key arrays (read-once callers only).
        """
        trees = []
        for tree in self._trees:
            keys, items = tree.export_state(copy=copy)
            trees.append({"keys": keys, "items": items})
        return {
            "num_hashes": self.num_hashes,
            "num_trees": self.num_trees,
            "seed": self.seed,
            "trees": trees,
        }

    def import_state(
        self, state: Dict[str, object], signatures: Dict[Hashable, np.ndarray]
    ) -> None:
        """Restore a state produced by :meth:`export_state` (replaces contents)."""
        if (
            state.get("num_hashes") != self.num_hashes
            or state.get("num_trees") != self.num_trees
        ):
            raise ValueError(
                "forest state was exported with a different (num_hashes, num_trees) "
                f"configuration: {state.get('num_hashes')}, {state.get('num_trees')}"
            )
        trees = state["trees"]
        if len(trees) != self.num_trees:
            raise ValueError(f"expected {self.num_trees} tree states, got {len(trees)}")
        self._signatures = dict(signatures)
        for tree, tree_state in zip(self._trees, trees):
            tree.import_state(
                tree_state["keys"], tree_state["items"], tree_state.get("ranks")
            )

    def estimated_bytes(self) -> int:
        """Approximate memory footprint (signatures plus tree entries)."""
        signature_bytes = sum(sig.nbytes for sig in self._signatures.values())
        tree_bytes = sum(tree.estimated_bytes() for tree in self._trees)
        return int(signature_bytes + tree_bytes)
