"""Text feature extraction: the raw material of the five evidence types.

The modules here turn attribute names and values into the set representations
and vectors the paper indexes:

* :mod:`repro.text.qgrams` — q-gram sets of attribute names (N evidence);
* :mod:`repro.text.tokenizer` — value tokenisation into parts and words;
* :mod:`repro.text.token_stats` — token histograms and the informative-token
  selection of Algorithm 1 (V and E evidence);
* :mod:`repro.text.regex_format` — format-describing regular expression
  strings over the primitive lexical classes (F evidence);
* :mod:`repro.text.embeddings` — the word-embedding model substrate
  (fastText substitute) and attribute-vector aggregation (E evidence).
"""

from repro.text.embeddings import (
    CooccurrenceEmbedding,
    HashingSubwordEmbedding,
    WordEmbeddingModel,
    aggregate_vectors,
)
from repro.text.qgrams import name_qgrams, qgrams
from repro.text.regex_format import format_string, format_set
from repro.text.token_stats import TokenHistogram, informative_and_frequent_tokens
from repro.text.tokenizer import split_parts, tokenize, tokenize_parts

__all__ = [
    "CooccurrenceEmbedding",
    "HashingSubwordEmbedding",
    "TokenHistogram",
    "WordEmbeddingModel",
    "aggregate_vectors",
    "format_set",
    "format_string",
    "informative_and_frequent_tokens",
    "name_qgrams",
    "qgrams",
    "split_parts",
    "tokenize",
    "tokenize_parts",
]
