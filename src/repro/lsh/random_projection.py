"""Random-projection (SimHash) signatures for cosine similarity (Charikar 2002).

The paper's word-embedding evidence compares attribute embedding vectors by
cosine distance; random hyperplane projections give an LSH family for that
metric: the probability that two vectors fall on the same side of a random
hyperplane is ``1 - theta / pi`` where ``theta`` is the angle between them.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np


class RandomProjection:
    """A bit signature of a real vector under random hyperplane projections."""

    __slots__ = ("bits", "num_bits", "seed", "is_zero")

    def __init__(self, bits: np.ndarray, num_bits: int, seed: int, is_zero: bool = False) -> None:
        self.bits = bits
        self.num_bits = num_bits
        self.seed = seed
        self.is_zero = is_zero

    def hamming_fraction(self, other: "RandomProjection") -> float:
        """Fraction of bit positions on which the signatures differ."""
        self._check_compatible(other)
        return float(np.count_nonzero(self.bits != other.bits) / self.num_bits)

    def cosine_similarity(self, other: "RandomProjection") -> float:
        """Estimated cosine similarity between the underlying vectors."""
        if self.is_zero or other.is_zero:
            return 0.0
        angle = self.hamming_fraction(other) * math.pi
        return math.cos(angle)

    def cosine_distance(self, other: "RandomProjection") -> float:
        """Estimated cosine distance, clipped to [0, 1].

        The paper's distances live in [0, 1]; negative cosine similarities
        (obtuse vectors) are treated as maximally distant.
        """
        return min(1.0, max(0.0, 1.0 - self.cosine_similarity(other)))

    def bytes_size(self) -> int:
        """Approximate in-memory size of the signature."""
        return int(self.bits.nbytes)

    def _check_compatible(self, other: "RandomProjection") -> None:
        if self.num_bits != other.num_bits or self.seed != other.seed:
            raise ValueError(
                "RandomProjection signatures are not comparable: "
                f"(num_bits={self.num_bits}, seed={self.seed}) vs "
                f"(num_bits={other.num_bits}, seed={other.seed})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RandomProjection):
            return NotImplemented
        return (
            self.num_bits == other.num_bits
            and self.seed == other.seed
            and bool(np.array_equal(self.bits, other.bits))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomProjection(num_bits={self.num_bits}, seed={self.seed})"


class RandomProjectionFactory:
    """Creates mutually comparable random-projection signatures.

    The hyperplane matrix is lazily instantiated the first time a vector of a
    given dimensionality is hashed and reused afterwards, so all signatures
    produced by one factory share the same hyperplanes.
    """

    def __init__(self, num_bits: int = 256, seed: int = 1) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.num_bits = num_bits
        self.seed = seed
        self._dimension: Optional[int] = None
        self._hyperplanes: Optional[np.ndarray] = None

    @property
    def dimension(self) -> Optional[int]:
        """Dimensionality of vectors seen so far (None before first use)."""
        return self._dimension

    def _ensure_hyperplanes(self, dimension: int) -> np.ndarray:
        if self._hyperplanes is None:
            generator = np.random.default_rng(self.seed)
            self._hyperplanes = generator.standard_normal((self.num_bits, dimension))
            self._dimension = dimension
        elif dimension != self._dimension:
            raise ValueError(
                f"vector dimension {dimension} does not match factory dimension {self._dimension}"
            )
        return self._hyperplanes

    def from_vector(self, vector: Sequence[float]) -> RandomProjection:
        """Build the signature of a dense vector."""
        array = np.asarray(vector, dtype=np.float64)
        if array.ndim != 1:
            raise ValueError("random projections expect 1-dimensional vectors")
        norm = float(np.linalg.norm(array))
        hyperplanes = self._ensure_hyperplanes(array.shape[0])
        if norm == 0.0:
            bits = np.zeros(self.num_bits, dtype=np.uint8)
            return RandomProjection(bits, self.num_bits, self.seed, is_zero=True)
        projections = hyperplanes @ array
        bits = (projections >= 0.0).astype(np.uint8)
        return RandomProjection(bits, self.num_bits, self.seed)

    def from_vectors(self, vectors: Sequence[Sequence[float]]) -> List[RandomProjection]:
        """Build the signatures of many dense vectors (table-level batch).

        Signature ``i`` is bit-identical to ``from_vector(vectors[i])``.  The
        zero checks and bit thresholding are batched; the projection itself
        stays one matrix-vector product per vector because a batched
        matrix-matrix product uses a different BLAS reduction order, and the
        resulting last-ulp drift could flip a sign bit of a projection that
        lands exactly on a hyperplane.
        """
        if not len(vectors):
            return []
        stacked = np.asarray(vectors, dtype=np.float64)
        if stacked.ndim != 2:
            raise ValueError("random projections expect a batch of 1-dimensional vectors")
        hyperplanes = self._ensure_hyperplanes(stacked.shape[1])
        # norm == 0.0 exactly when every component is zero, for any float norm.
        zero = ~np.any(stacked, axis=1)
        projections = np.zeros((stacked.shape[0], self.num_bits), dtype=np.float64)
        for index in range(stacked.shape[0]):
            if not zero[index]:
                projections[index] = hyperplanes @ stacked[index]
        bits = (projections >= 0.0).astype(np.uint8)
        return [
            RandomProjection(
                np.zeros(self.num_bits, dtype=np.uint8), self.num_bits, self.seed, is_zero=True
            )
            if zero[index]
            else RandomProjection(bits[index], self.num_bits, self.seed)
            for index in range(stacked.shape[0])
        ]

    def from_bits(self, bits: np.ndarray, is_zero: bool = False) -> RandomProjection:
        """Wrap an existing bit signature (e.g. loaded from disk)."""
        array = np.asarray(bits, dtype=np.uint8)
        if array.shape != (self.num_bits,):
            raise ValueError(
                f"expected signature of shape ({self.num_bits},), got {array.shape}"
            )
        return RandomProjection(array, self.num_bits, self.seed, is_zero=is_zero)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomProjectionFactory(num_bits={self.num_bits}, seed={self.seed})"


@lru_cache(maxsize=None)
def _cosine_distance_table(num_bits: int) -> np.ndarray:
    """``table[d]`` = the cosine distance for ``d`` differing bit positions.

    Built with ``math.cos`` — the same libm call the scalar path makes — so
    the batched path is bit-identical to pairwise ``cosine_distance``.
    """
    table = np.empty(num_bits + 1, dtype=np.float64)
    for differing in range(num_bits + 1):
        similarity = math.cos(float(differing / num_bits) * math.pi)
        table[differing] = min(1.0, max(0.0, 1.0 - similarity))
    table.setflags(write=False)
    return table


def batch_cosine_distances(
    query_bits: np.ndarray,
    matrix: np.ndarray,
    query_zero: bool = False,
    zero_rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Estimated cosine distances between one bit signature and a bit matrix.

    ``matrix`` has shape ``(n, num_bits)``; one vectorized XOR-style popcount
    (a boolean-difference row sum) replaces ``n`` pairwise
    ``cosine_distance`` calls.  Zero-vector rows (and every row when
    ``query_zero``) get the maximal distance 1.0, as in the scalar path.
    """
    count = matrix.shape[0]
    if count == 0:
        return np.empty(0, dtype=np.float64)
    if query_zero:
        return np.ones(count, dtype=np.float64)
    num_bits = int(query_bits.shape[0])
    differing = np.count_nonzero(matrix != query_bits[np.newaxis, :], axis=1)
    distances = _cosine_distance_table(num_bits)[differing]
    if zero_rows is not None:
        distances[zero_rows] = 1.0
    return distances


def pairwise_cosine_distances(
    queries: np.ndarray,
    stored: np.ndarray,
    query_zero: Optional[np.ndarray] = None,
    zero_rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row-aligned cosine distances between two ``(n, num_bits)`` bit matrices.

    Row ``i`` of ``queries`` is compared with row ``i`` of ``stored`` — the
    multi-query counterpart of :func:`batch_cosine_distances`.  Pairs flagged
    in ``query_zero`` / ``zero_rows`` get the maximal distance 1.0, matching
    the scalar zero-vector convention.
    """
    count = stored.shape[0]
    if count == 0:
        return np.empty(0, dtype=np.float64)
    num_bits = int(stored.shape[1])
    differing = np.count_nonzero(queries != stored, axis=1)
    distances = _cosine_distance_table(num_bits)[differing]
    if query_zero is not None:
        distances[query_zero] = 1.0
    if zero_rows is not None:
        distances[zero_rows] = 1.0
    return distances


def exact_cosine_similarity(first: Sequence[float], second: Sequence[float]) -> float:
    """Exact cosine similarity between two vectors (0 when either is zero)."""
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def exact_cosine_distance(first: Sequence[float], second: Sequence[float]) -> float:
    """Exact cosine distance, clipped to [0, 1]."""
    return min(1.0, max(0.0, 1.0 - exact_cosine_similarity(first, second)))
