"""Join-path discovery (section IV): SA-joinability and Algorithm 3.

Two datasets are *SA-joinable* when there is value-index evidence that the
token sets of a pair of their attributes overlap and at least one attribute
of the pair is its table's subject attribute.  The SA-join graph connects
SA-joinable tables; Algorithm 3 walks it depth-first from every top-k table,
collecting acyclic paths whose intermediate tables are outside the top-k but
still related to the target by at least one index.  Tables reached this way
can contribute values to target attributes the top-k left uncovered.

Graph construction is batched: every table's subject-attribute probe runs
through one multi-query value-index lookup (the same kernels the batched
query engine uses), the paper's estimated overlap coefficient — computed
vectorized from the MinHash Jaccard estimates the lookup already produced —
pre-filters the candidate pairs, and only the survivors pay for exact
value-sample verification, optionally sharded across worker processes
(:func:`~repro.core.parallel.verify_value_overlaps`).  The scalar
probe-at-a-time construction lives on as :meth:`SAJoinGraph.build_sequential`,
the equivalence oracle the batched build is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.profiles import AttributeProfile
from repro.lake.datalake import AttributeRef
from repro.lsh.lsh_ensemble import LSHEnsemble
from repro.lsh.minhash import MinHashFactory


@dataclass(frozen=True)
class JoinEdge:
    """An SA-join opportunity between two attributes of different tables."""

    left: AttributeRef
    right: AttributeRef
    overlap: float

    def tables(self) -> Tuple[str, str]:
        """The two table names connected by this edge."""
        return self.left.table, self.right.table


@dataclass
class JoinPath:
    """A path of SA-joinable tables starting from a top-k table."""

    tables: List[str]
    edges: List[JoinEdge]

    @property
    def start(self) -> str:
        """The top-k table the path starts from."""
        return self.tables[0]

    @property
    def reached(self) -> List[str]:
        """Tables reached beyond the starting table."""
        return self.tables[1:]

    def __len__(self) -> int:
        return len(self.tables)


@dataclass
class JoinPathSearch:
    """The result of one Algorithm 3 enumeration.

    ``truncated`` is True when the ``max_paths`` cap stopped the walk before
    every start table was fully explored, so callers can tell a complete
    enumeration from a capped one.  The object behaves like the sequence of
    its paths, so existing iteration/len/slicing call sites keep working.
    """

    paths: List[JoinPath]
    truncated: bool = False

    def __iter__(self):
        return iter(self.paths)

    def __len__(self) -> int:
        return len(self.paths)

    def __getitem__(self, index):
        return self.paths[index]


def estimated_overlap(jaccard: float, size_a: int, size_b: int) -> float:
    """Overlap coefficient estimated from a Jaccard estimate and set sizes.

    Uses the inclusion–exclusion identity from section IV:
    ``ov = J * (|A| + |B|) / ((1 + J) * min(|A|, |B|))``, clipped to [0, 1].
    """
    smaller = min(size_a, size_b)
    if smaller <= 0 or jaccard <= 0.0:
        return 0.0
    value = jaccard * (size_a + size_b) / ((1.0 + jaccard) * smaller)
    return min(1.0, value)


def estimated_overlaps(
    jaccard: np.ndarray, size_a: int, sizes_b: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`estimated_overlap` of one probe against many candidates.

    Entry ``i`` equals ``estimated_overlap(jaccard[i], size_a, sizes_b[i])``
    exactly; this is the pre-filter arithmetic of the batched SA-join graph
    build, evaluated once per candidate pool instead of once per pair.
    """
    jaccard = np.asarray(jaccard, dtype=np.float64)
    sizes_b = np.asarray(sizes_b, dtype=np.float64)
    values = np.zeros_like(jaccard)
    smaller = np.minimum(float(size_a), sizes_b)
    valid = (smaller > 0) & (jaccard > 0.0)
    values[valid] = (
        jaccard[valid]
        * (size_a + sizes_b[valid])
        / ((1.0 + jaccard[valid]) * smaller[valid])
    )
    return np.minimum(values, 1.0)


def _subject_probes(indexes: D3LIndexes) -> List[Tuple[str, AttributeProfile]]:
    """The usable subject-attribute probes, in sorted table order.

    Sorted order makes graph construction independent of lake insertion
    order, so serial, batched, and sharded builds resolve best-edge ties
    identically.
    """
    probes: List[Tuple[str, AttributeProfile]] = []
    for table_name in sorted(indexes.table_profiles):
        subject = indexes.table_profiles[table_name].subject_profile()
        if subject is None or not subject.tokens:
            continue
        probes.append((table_name, subject))
    return probes


def _apply_edge(
    graph: nx.Graph, table_name: str, subject_ref: AttributeRef, ref: AttributeRef,
    overlap: float,
) -> None:
    """Record one verified SA-join edge, keeping the best overlap per pair."""
    existing = graph.get_edge_data(table_name, ref.table)
    edge = JoinEdge(left=subject_ref, right=ref, overlap=overlap)
    if existing is None or existing["join"].overlap < overlap:
        graph.add_edge(table_name, ref.table, join=edge)


class SAJoinGraph:
    """The SA-join graph G_S = (S, I) over an indexed data lake."""

    def __init__(self, graph: nx.Graph) -> None:
        self._graph = graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes: table names)."""
        return self._graph

    @property
    def table_names(self) -> List[str]:
        """All nodes of the graph."""
        return list(self._graph.nodes)

    def neighbours(self, table_name: str) -> List[str]:
        """Tables SA-joinable with ``table_name`` (empty when unknown)."""
        if table_name not in self._graph:
            return []
        return sorted(self._graph.neighbors(table_name))

    def edge(self, first: str, second: str) -> Optional[JoinEdge]:
        """The join edge between two tables, when one exists."""
        data = self._graph.get_edge_data(first, second)
        if not data:
            return None
        return data["join"]

    def edge_count(self) -> int:
        """Number of SA-join edges in the graph."""
        return self._graph.number_of_edges()

    def edges(self) -> List[JoinEdge]:
        """Every SA-join edge, sorted by the (left, right) attribute refs."""
        return sorted(
            (self._graph.get_edge_data(first, second)["join"]
             for first, second in self._graph.edges),
            key=lambda edge: (edge.left, edge.right),
        )

    def connected_component(self, table_name: str) -> Set[str]:
        """Tables reachable from ``table_name`` through SA-join edges."""
        if table_name not in self._graph:
            return set()
        return set(nx.node_connected_component(self._graph, table_name))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        indexes: D3LIndexes,
        config: Optional[D3LConfig] = None,
        workers: Optional[int] = None,
        executor=None,
        overlap_cache: Optional[Dict[Tuple[AttributeRef, AttributeRef], float]] = None,
        backend: str = "process",
    ) -> "SAJoinGraph":
        """Build the SA-join graph from an indexed lake, in batched sweeps.

        Every table's subject-attribute probe reuses the value-index MinHash
        signature the lake build already stored, all probes run through one
        multi-query lookup (``config.join_candidate_pool`` candidates per
        probe), and the estimated overlap coefficient — computed vectorized
        from the Jaccard estimates the lookup produced — drops candidate
        pairs that cannot clear ``config.overlap_threshold`` before any
        Python-level set intersection happens.  Surviving pairs are verified
        with the exact value-sample overlap coefficient, sharded across
        ``workers`` of a transient execution ``backend`` when requested
        (:func:`~repro.core.parallel.verify_value_overlaps`) — or, when the
        owning engine passes a live
        :class:`~repro.core.parallel.ParallelQueryExecutor` as ``executor``,
        over that executor's persistent backend (for the process backend: a
        shared-memory worker pool with no sample shipping at all);
        verification is a pure per-pair function and edges are applied in
        sorted probe order, so every routing (``workers=1``, ``workers=N``,
        executor pool, any backend) produces the identical edge set.

        The pre-filter estimates overlap from the *token sets* the value
        index is built from, while verification compares distinct-value
        samples, so the cut is heuristic: the
        ``config.join_prefilter_margin`` slack leaves room for both MinHash
        noise and the token/value mismatch, equivalence against the
        unfiltered scalar oracle (:meth:`build_sequential`) is asserted by
        the tests and the tracked benchmark on their lakes, and a margin of
        0.0 disables the cut for callers that need the oracle's edge set
        guaranteed on arbitrary data.

        Because the probe attribute is always a subject attribute, the
        SA-joinability condition (at least one side is a subject attribute)
        holds by construction.

        ``overlap_cache`` maps ``(subject ref, candidate ref)`` pairs to
        overlaps verified by a previous build.  The exact overlap is a pure
        function of the two attributes' value samples, so cached pairs skip
        verification entirely — the incremental path after a single-table
        mutation, where the owning engine evicts only the pairs touching the
        mutated tables.  Freshly verified overlaps are written back into the
        cache.  Results are identical with or without a (correctly evicted)
        cache.
        """
        from repro.core.parallel import verify_value_overlaps

        config = config or indexes.config
        graph = nx.Graph()
        graph.add_nodes_from(indexes.table_names)
        probes = _subject_probes(indexes)
        if not probes:
            return cls(graph)

        signatures = []
        for _, subject in probes:
            signature = indexes.signature(EvidenceType.VALUE, subject.ref)
            if signature is None:
                signature = indexes.signature_of(EvidenceType.VALUE, subject)
            signatures.append(signature)
        per_probe = indexes.multi_lookup(
            EvidenceType.VALUE,
            signatures,
            k=config.join_candidate_pool,
            exclude_tables=[table_name for table_name, _ in probes],
        )

        margin = config.join_prefilter_margin
        prefilter_cutoff = config.overlap_threshold * margin
        kept_per_probe: List[List[AttributeRef]] = []
        pairs: List[Tuple[AttributeRef, AttributeRef]] = []
        samples: Dict[AttributeRef, Set[str]] = {}
        for (table_name, subject), candidates in zip(probes, per_probe):
            refs: List[AttributeRef] = []
            distances: List[float] = []
            for ref, distance in candidates:
                other = indexes.profiles.get(ref)
                if other is None or not other.tokens:
                    continue
                refs.append(ref)
                distances.append(distance)
            if refs and margin > 0.0:
                estimates = estimated_overlaps(
                    1.0 - np.asarray(distances, dtype=np.float64),
                    len(subject.tokens),
                    np.asarray(
                        [len(indexes.profiles[ref].tokens) for ref in refs],
                        dtype=np.float64,
                    ),
                )
                refs = [
                    refs[index]
                    for index in np.flatnonzero(estimates >= prefilter_cutoff)
                ]
            kept_per_probe.append(refs)
            if refs:
                fresh = [
                    ref
                    for ref in refs
                    if overlap_cache is None or (subject.ref, ref) not in overlap_cache
                ]
                if fresh and executor is None:
                    # The executor routing resolves samples worker-side from
                    # the attached shared index; only the sample-shipping
                    # paths need the dictionary built at all.
                    samples[subject.ref] = subject.value_sample
                    for ref in fresh:
                        samples[ref] = indexes.profiles[ref].value_sample
                pairs.extend((subject.ref, ref) for ref in fresh)

        overlaps = verify_value_overlaps(
            samples, pairs, workers=workers, executor=executor, backend=backend
        )
        if overlap_cache is not None:
            overlap_cache.update(overlaps)
            overlaps = overlap_cache
        for (table_name, subject), refs in zip(probes, kept_per_probe):
            for ref in refs:
                overlap = overlaps[(subject.ref, ref)]
                if overlap < config.overlap_threshold:
                    continue
                _apply_edge(graph, table_name, subject.ref, ref, overlap)
        return cls(graph)

    @classmethod
    def build_sequential(
        cls, indexes: D3LIndexes, config: Optional[D3LConfig] = None
    ) -> "SAJoinGraph":
        """The scalar probe-at-a-time construction (the batched build's oracle).

        For every table's subject attribute the value index is queried as a
        blocking step; each candidate pair is then verified against the
        postulated inclusion dependency by computing the overlap coefficient
        of the two attributes' distinct-value samples, and pairs clearing the
        configured threshold become edges.  No estimated-overlap pre-filter
        runs, so every blocked pair pays for exact verification — which is
        exactly what makes this path the admissibility oracle for
        :meth:`build`.
        """
        config = config or indexes.config
        graph = nx.Graph()
        graph.add_nodes_from(indexes.table_names)

        for table_name, subject in _subject_probes(indexes):
            candidates = indexes.lookup(
                EvidenceType.VALUE,
                subject,
                k=config.join_candidate_pool,
                exclude_table=table_name,
            )
            for ref, _distance in candidates:
                other_profile = indexes.profiles.get(ref)
                if other_profile is None or not other_profile.tokens:
                    continue
                overlap = subject.value_overlap(other_profile)
                if overlap < config.overlap_threshold:
                    continue
                _apply_edge(graph, table_name, subject.ref, ref, overlap)
        return cls(graph)

    @classmethod
    def build_with_ensemble(
        cls, indexes: D3LIndexes, config: Optional[D3LConfig] = None
    ) -> "SAJoinGraph":
        """Alternative construction using LSH Ensemble containment blocking.

        The paper notes LSH Ensemble (Zhu et al. 2016) as an improvement
        compatible with its value index: MinHash-based Jaccard blocking
        under-retrieves containment pairs whose set sizes are skewed, which
        is exactly the shape of inclusion dependencies.  This variant indexes
        every textual attribute's token set in an LSH Ensemble, probes it
        with each table's subject attribute at the configured containment
        threshold, and then applies the same value-sample verification as
        :meth:`build`.
        """
        config = config or indexes.config
        graph = nx.Graph()
        graph.add_nodes_from(indexes.table_names)

        factory = MinHashFactory(num_perm=config.num_hashes, seed=config.seed + 50)
        ensemble = LSHEnsemble(
            threshold=config.overlap_threshold,
            num_hashes=config.num_hashes,
            seed=config.seed + 51,
        )
        signatures: Dict[AttributeRef, Tuple[object, int]] = {}
        for ref, profile in indexes.profiles.items():
            if not profile.tokens:
                continue
            signature = factory.from_tokens(profile.tokens)
            signatures[ref] = (signature, len(profile.tokens))
            ensemble.insert(ref, signature, len(profile.tokens))
        ensemble.index()

        for table_name, subject in _subject_probes(indexes):
            probe = factory.from_tokens(subject.tokens)
            candidates = ensemble.query(probe, len(subject.tokens))
            for ref in sorted(candidates):
                if ref.table == table_name:
                    continue
                other_profile = indexes.profiles.get(ref)
                if other_profile is None:
                    continue
                overlap = subject.value_overlap(other_profile)
                if overlap < config.overlap_threshold:
                    continue
                _apply_edge(graph, table_name, subject.ref, ref, overlap)
        return cls(graph)


def find_join_paths(
    graph: SAJoinGraph,
    top_k_tables: Sequence[str],
    related_tables: Iterable[str],
    max_length: int = 3,
    max_paths: Optional[int] = None,
) -> JoinPathSearch:
    """Algorithm 3: SA-join paths from every top-k table into the rest of the lake.

    ``related_tables`` is the set of tables for which at least one index
    provides evidence of relatedness to the target (the ``I*.lookup(T)``
    condition); only such tables may appear on a path.  Paths are acyclic, do
    not revisit top-k tables, and are truncated at ``max_length`` hops.

    ``max_paths`` bounds the enumeration: dense join graphs have
    combinatorially many acyclic paths, and the coverage computation only
    needs the reachable tables, so the walk stops once the cap is reached —
    and the returned :class:`JoinPathSearch` carries ``truncated=True`` so
    callers can tell a complete enumeration from a capped one (the cap can
    hit mid-walk, leaving later start tables unexplored).
    """
    top_k_set = set(top_k_tables)
    related = set(related_tables)
    paths: List[JoinPath] = []

    def _walk(current: str, path_tables: List[str], path_edges: List[JoinEdge]) -> bool:
        if len(path_tables) - 1 >= max_length:
            return True
        for neighbour in graph.neighbours(current):
            if max_paths is not None and len(paths) >= max_paths:
                return False
            if neighbour in top_k_set or neighbour in path_tables:
                continue
            if neighbour not in related:
                continue
            edge = graph.edge(current, neighbour)
            if edge is None:
                continue
            new_tables = path_tables + [neighbour]
            new_edges = path_edges + [edge]
            paths.append(JoinPath(tables=list(new_tables), edges=list(new_edges)))
            if not _walk(neighbour, new_tables, new_edges):
                return False
        return True

    truncated = False
    for start in top_k_tables:
        if not _walk(start, [start], []):
            truncated = True
            break
    return JoinPathSearch(paths=paths, truncated=truncated)


def tables_reached(paths: Iterable[JoinPath]) -> Set[str]:
    """All tables reached by at least one join path (excluding starts)."""
    reached: Set[str] = set()
    for path in paths:
        reached.update(path.reached)
    return reached


def paths_from(paths: Iterable[JoinPath], start: str) -> List[JoinPath]:
    """The join paths starting from a given top-k table."""
    return [path for path in paths if path.start == start]
