"""Aurum baseline — Castro Fernandez et al., ICDE 2018.

Aurum builds and queries an *enterprise knowledge graph* (EKG) over a data
lake in two steps:

1. **profiling** — every column receives a lightweight profile (cardinality,
   distinct ratio) plus MinHash signatures of its value tokens and of its
   attribute-name tokens;
2. **graph construction** — nodes are columns; edges connect columns whose
   content similarity or name (TF-IDF style) similarity clears a threshold,
   and PK/FK *candidate* edges connect near-unique columns to columns whose
   values they contain.

Discovery is a graph problem: a query column is matched to graph nodes via
the LSH indexes (queried once, when the query's neighbourhood is built) and
related tables are read off the neighbourhood.  Results are ranked with the
paper's *certainty* strategy: when a pair is related by more than one
evidence type, the maximum similarity score is used.  ``Aurum+J`` follows
PK/FK candidate edges from the top-k tables, which is how the D3L paper
evaluates Aurum's join-path coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import networkx as nx

from repro.baselines.base import Alignment, RankedAnswer, RankedTable
from repro.core.config import D3LConfig
from repro.lake.datalake import AttributeRef, DataLake
from repro.lsh.lsh_forest import LSHForest
from repro.lsh.minhash import MinHash, MinHashFactory
from repro.tables.column import Column
from repro.tables.table import Table
from repro.text.qgrams import normalise_name
from repro.text.token_stats import value_token_set

#: Distinct-value ratio above which a column is considered a key candidate.
_KEY_DISTINCT_RATIO = 0.9


@dataclass
class _AurumProfile:
    """Column profile stored in the EKG."""

    ref: AttributeRef
    is_numeric: bool
    token_count: int
    distinct_ratio: float
    content_signature: Optional[MinHash]
    name_signature: Optional[MinHash]


class Aurum:
    """The Aurum data-discovery baseline."""

    def __init__(self, config: Optional[D3LConfig] = None) -> None:
        self.config = config or D3LConfig()
        cfg = self.config
        self._minhash_factory = MinHashFactory(num_perm=cfg.num_hashes, seed=cfg.seed + 200)
        self._content_forest = LSHForest(cfg.num_hashes, cfg.num_trees, seed=cfg.seed + 201)
        self._name_forest = LSHForest(cfg.num_hashes, cfg.num_trees, seed=cfg.seed + 202)
        self._profiles: Dict[AttributeRef, _AurumProfile] = {}
        self._graph = nx.Graph()
        self._graph_built = False

    # ------------------------------------------------------------------ #
    # step 1: profiling
    # ------------------------------------------------------------------ #
    def _profile_column(self, table_name: str, column: Column) -> _AurumProfile:
        ref = AttributeRef(table_name, column.name)
        name_tokens = set(normalise_name(column.name).split())
        name_signature = self._minhash_factory.from_tokens(name_tokens) if name_tokens else None
        if column.is_numeric:
            content_signature = None
            token_count = 0
        else:
            tokens = value_token_set(column.non_missing)
            token_count = len(tokens)
            content_signature = (
                self._minhash_factory.from_tokens(tokens) if tokens else None
            )
        return _AurumProfile(
            ref=ref,
            is_numeric=column.is_numeric,
            token_count=token_count,
            distinct_ratio=column.distinct_ratio,
            content_signature=content_signature,
            name_signature=name_signature,
        )

    def index_table(self, table: Table) -> None:
        """Profile every column of ``table`` and stage it for the EKG."""
        for column in table.columns:
            profile = self._profile_column(table.name, column)
            self._profiles[profile.ref] = profile
            if profile.content_signature is not None:
                self._content_forest.insert(profile.ref, profile.content_signature.hashvalues)
            if profile.name_signature is not None:
                self._name_forest.insert(profile.ref, profile.name_signature.hashvalues)
        self._graph_built = False

    def index_lake(self, lake: DataLake) -> None:
        """Profile every table of ``lake`` and build the knowledge graph."""
        for table in lake:
            self.index_table(table)
        self.build_graph()

    # ------------------------------------------------------------------ #
    # step 2: graph construction
    # ------------------------------------------------------------------ #
    def build_graph(self) -> None:
        """Construct the EKG: content, schema and PK/FK candidate edges."""
        if self._graph_built:
            return
        graph = nx.Graph()
        graph.add_nodes_from(self._profiles)
        pool = max(self.config.min_candidates, 20)
        pkfk_threshold = self.config.lsh_threshold
        # Content edges use a more permissive threshold than PK/FK candidates:
        # Aurum's EKG links columns with substantial (not near-identical)
        # content overlap and reserves the strict test for join candidates.
        content_threshold = 0.75 * self.config.lsh_threshold

        for ref, profile in self._profiles.items():
            if profile.content_signature is None:
                continue
            candidates = self._content_forest.query(profile.content_signature.hashvalues, pool)
            for other_ref in candidates:
                if other_ref == ref or other_ref.table == ref.table:
                    continue
                other = self._profiles.get(other_ref)
                if other is None or other.content_signature is None:
                    continue
                similarity = profile.content_signature.jaccard(other.content_signature)
                if similarity < content_threshold:
                    continue
                self._add_edge(graph, ref, other_ref, "content", similarity)
                # PK/FK candidate: near-identical content where one side is
                # (nearly) a key of its table.
                if similarity >= pkfk_threshold and (
                    profile.distinct_ratio >= _KEY_DISTINCT_RATIO
                    or other.distinct_ratio >= _KEY_DISTINCT_RATIO
                ):
                    self._add_edge(graph, ref, other_ref, "pkfk", similarity)

        self._graph = graph
        self._graph_built = True

    @staticmethod
    def _add_edge(
        graph: nx.Graph, first: AttributeRef, second: AttributeRef, kind: str, score: float
    ) -> None:
        data = graph.get_edge_data(first, second)
        if data is None:
            graph.add_edge(first, second, relations={kind: score})
            return
        relations = data["relations"]
        relations[kind] = max(relations.get(kind, 0.0), score)

    @property
    def graph(self) -> nx.Graph:
        """The enterprise knowledge graph (nodes: attribute references)."""
        self.build_graph()
        return self._graph

    def estimated_bytes(self) -> int:
        """Approximate footprint of indexes, profiles and graph (Table II)."""
        self.build_graph()
        index_bytes = self._content_forest.estimated_bytes() + self._name_forest.estimated_bytes()
        profile_bytes = len(self._profiles) * 64
        graph_bytes = self._graph.number_of_edges() * 48 + self._graph.number_of_nodes() * 16
        return int(index_bytes + profile_bytes + graph_bytes)

    # ------------------------------------------------------------------ #
    # discovery
    # ------------------------------------------------------------------ #
    def query(self, target: Table, k: int, exclude_self: bool = True) -> RankedAnswer:
        """Rank lake tables related to ``target`` with certainty ranking.

        Each target column is matched against the content and name indexes
        once; for every candidate the certainty score is the maximum
        similarity across the evidence types relating the pair.  A table's
        score is the maximum certainty over its aligned columns.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        self.build_graph()
        exclude_table = target.name if exclude_self else None
        pool = self.config.candidate_pool_size(k)

        table_scores: Dict[str, float] = {}
        table_alignments: Dict[str, Dict[str, Alignment]] = {}

        for column in target.columns:
            profile = self._profile_column(target.name, column)
            candidate_scores: Dict[AttributeRef, float] = {}

            if profile.content_signature is not None:
                for ref in self._content_forest.query(profile.content_signature.hashvalues, pool):
                    other = self._profiles.get(ref)
                    if other is None or other.content_signature is None:
                        continue
                    similarity = profile.content_signature.jaccard(other.content_signature)
                    candidate_scores[ref] = max(candidate_scores.get(ref, 0.0), similarity)

            if profile.name_signature is not None:
                for ref in self._name_forest.query(profile.name_signature.hashvalues, pool):
                    other = self._profiles.get(ref)
                    if other is None or other.name_signature is None:
                        continue
                    similarity = profile.name_signature.jaccard(other.name_signature)
                    candidate_scores[ref] = max(candidate_scores.get(ref, 0.0), similarity)

            for ref, score in candidate_scores.items():
                if exclude_table is not None and ref.table == exclude_table:
                    continue
                if score <= 0.0:
                    continue
                alignment = Alignment(target_attribute=column.name, source=ref, score=score)
                alignments = table_alignments.setdefault(ref.table, {})
                existing = alignments.get(column.name)
                if existing is None or existing.score < score:
                    alignments[column.name] = alignment
                table_scores[ref.table] = max(table_scores.get(ref.table, 0.0), score)

        results = [
            RankedTable(
                table_name=table_name,
                score=score,
                alignments=list(table_alignments.get(table_name, {}).values()),
            )
            for table_name, score in table_scores.items()
        ]
        results.sort(key=lambda result: (-result.score, result.table_name))
        return RankedAnswer(target_name=target.name, requested_k=k, results=results)

    def joinable_tables(self, table_name: str, max_hops: int = 2) -> Set[str]:
        """Tables reachable from ``table_name`` through PK/FK candidate edges."""
        self.build_graph()
        start_nodes = [ref for ref in self._profiles if ref.table == table_name]
        reached: Set[str] = set()
        frontier = set(start_nodes)
        visited: Set[AttributeRef] = set(frontier)
        for _ in range(max_hops):
            next_frontier: Set[AttributeRef] = set()
            for node in frontier:
                if node not in self._graph:
                    continue
                for neighbour in self._graph.neighbors(node):
                    relations = self._graph.get_edge_data(node, neighbour)["relations"]
                    if "pkfk" not in relations:
                        continue
                    if neighbour in visited:
                        continue
                    visited.add(neighbour)
                    next_frontier.add(neighbour)
                    if neighbour.table != table_name:
                        reached.add(neighbour.table)
            frontier = next_frontier
        return reached

    def query_with_joins(
        self, target: Table, k: int, exclude_self: bool = True, max_hops: int = 2
    ) -> Tuple[RankedAnswer, Set[str]]:
        """Aurum+J: the ranked answer plus tables joinable with the top-k."""
        answer = self.query(target, k, exclude_self=exclude_self)
        joined: Set[str] = set()
        top_k = set(answer.table_names(k))
        for table_name in top_k:
            for reached in self.joinable_tables(table_name, max_hops=max_hops):
                if reached not in top_k and reached != target.name:
                    joined.add(reached)
        return answer, joined
