"""Extending relatedness through join paths (section IV of the paper).

A target table often cannot be fully populated from the top-k unionable
datasets alone: some of its attributes only appear in tables whose overall
relatedness signal is weak, but which *join* with a top-k table through a
subject attribute.  This example shows the mechanism end to end on the
Synthetic corpus:

1. index the corpus with D3L and build the SA-join graph;
2. query a target and measure how much of it the plain top-k covers;
3. follow Algorithm 3's join paths and measure the coverage gain;
4. materialise one join path as an actual relational join.

Run with::

    python examples/join_path_coverage.py
"""

from __future__ import annotations

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.evaluation.coverage import target_coverage_at_k, target_coverage_with_joins
from repro.tables.operations import hash_join


def main() -> None:
    corpus = generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=12,
            tables_per_base=8,
            base_rows=120,
            min_rows=30,
            max_rows=90,
            seed=33,
        )
    )
    print(f"Generated Synthetic-style lake with {len(corpus.lake)} tables")

    engine = D3L(config=D3LConfig(num_hashes=128, embedding_dimension=48))
    engine.index_lake(corpus.lake)
    graph = engine.join_graph
    print(f"SA-join graph: {len(graph.table_names)} tables, {graph.edge_count()} join edges\n")

    target = corpus.pick_targets(1, seed=11)[0]
    k = 5
    print(f"Target: {target.name}  ({target.arity} attributes)")

    from repro.core.api import QueryRequest, execute

    augmented = execute(engine, QueryRequest(target=target, k=k, joins=True)).legacy
    answer = augmented.base

    joined_per_start = {
        start: {name for name in augmented.tables_for(start)}
        for start in answer.table_names(k)
    }
    plain_coverage = target_coverage_at_k(answer, target, k)
    joined_coverage = target_coverage_with_joins(answer, joined_per_start, target, k)

    print(f"\nTop-{k} coverage without join paths: {plain_coverage:.2f}")
    print(f"Top-{k} coverage with join paths:    {joined_coverage:.2f}")
    print(f"Join paths found: {len(augmented.join_paths)}")

    for path in augmented.join_paths[:5]:
        hops = " -> ".join(path.tables)
        print(f"  {hops}")

    if augmented.join_paths:
        path = augmented.join_paths[0]
        edge = path.edges[0]
        left_table = corpus.lake.table(edge.left.table)
        right_table = corpus.lake.table(edge.right.table)
        joined = hash_join(left_table, right_table, edge.left.column, edge.right.column)
        print(
            f"\nMaterialised join {edge.left} ~ {edge.right}: "
            f"{joined.cardinality} rows, {joined.arity} columns"
        )
    else:
        print("\nNo join path to materialise for this target.")


if __name__ == "__main__":
    main()
