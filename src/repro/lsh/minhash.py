"""MinHash signatures (Broder 1997) for Jaccard similarity estimation.

The paper indexes set representations of attribute names, value tokens, and
format strings with MinHash, so that the Jaccard distance between two
attributes can be approximated from the fraction of agreeing signature
positions instead of comparing the sets directly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.lsh.hashing import MAX_HASH, HashFamily, hash_tokens


class MinHash:
    """A MinHash signature over a token set.

    Instances created from the same :class:`MinHashFactory` (or the same
    ``num_perm``/``seed`` pair) are comparable with :meth:`jaccard`.
    """

    __slots__ = ("hashvalues", "num_perm", "seed")

    def __init__(self, hashvalues: np.ndarray, num_perm: int, seed: int) -> None:
        self.hashvalues = hashvalues
        self.num_perm = num_perm
        self.seed = seed

    def jaccard(self, other: "MinHash") -> float:
        """Estimate the Jaccard similarity with ``other``.

        The estimate is the fraction of positions on which the two signatures
        agree, which is an unbiased estimator of the true Jaccard similarity.
        """
        self._check_compatible(other)
        return float(np.count_nonzero(self.hashvalues == other.hashvalues) / self.num_perm)

    def jaccard_distance(self, other: "MinHash") -> float:
        """Estimated Jaccard distance (1 - similarity), clipped to [0, 1]."""
        return min(1.0, max(0.0, 1.0 - self.jaccard(other)))

    def is_empty(self) -> bool:
        """True when the signature was built from an empty token set."""
        return bool(np.all(self.hashvalues == MAX_HASH))

    def digest(self) -> np.ndarray:
        """The raw signature array (read-only view)."""
        return self.hashvalues

    def bytes_size(self) -> int:
        """Approximate in-memory size of the signature, for space accounting."""
        return int(self.hashvalues.nbytes)

    def _check_compatible(self, other: "MinHash") -> None:
        if self.num_perm != other.num_perm or self.seed != other.seed:
            raise ValueError(
                "MinHash signatures are not comparable: "
                f"(num_perm={self.num_perm}, seed={self.seed}) vs "
                f"(num_perm={other.num_perm}, seed={other.seed})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MinHash):
            return NotImplemented
        return (
            self.num_perm == other.num_perm
            and self.seed == other.seed
            and bool(np.array_equal(self.hashvalues, other.hashvalues))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MinHash(num_perm={self.num_perm}, seed={self.seed})"


class MinHashFactory:
    """Creates mutually comparable MinHash signatures.

    The paper configures all systems with a MinHash size of 256; that is the
    default here as well.
    """

    def __init__(self, num_perm: int = 256, seed: int = 1) -> None:
        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        self.num_perm = num_perm
        self.seed = seed
        self._family = HashFamily(num_perm, seed=seed)

    def from_tokens(self, tokens: Iterable[str]) -> MinHash:
        """Build the signature of a token set."""
        hashed = hash_tokens(tokens, seed=self.seed)
        values = self._family.minhash_values(hashed)
        return MinHash(values, self.num_perm, self.seed)

    def from_tokens_batch(self, token_sets: Sequence[Iterable[str]]) -> List[MinHash]:
        """Build the signatures of many token sets in one batched pass.

        Signature ``i`` is bit-identical to ``from_tokens(token_sets[i])``;
        the work differs only in that all sets share a handful of permutation
        matrix applications (:meth:`HashFamily.minhash_values_batch`) instead
        of paying one per set — the table-level indexing fast path.
        """
        hashed = [hash_tokens(tokens, seed=self.seed) for tokens in token_sets]
        values = self._family.minhash_values_batch(hashed)
        return [
            MinHash(values[index], self.num_perm, self.seed)
            for index in range(len(hashed))
        ]

    def from_hashvalues(self, hashvalues: np.ndarray) -> MinHash:
        """Wrap an existing signature array (e.g. loaded from disk)."""
        values = np.asarray(hashvalues, dtype=np.uint64)
        if values.shape != (self.num_perm,):
            raise ValueError(
                f"expected signature of shape ({self.num_perm},), got {values.shape}"
            )
        return MinHash(values, self.num_perm, self.seed)

    def empty(self) -> MinHash:
        """Signature of the empty set (maximally distant from everything)."""
        return self.from_tokens(())

    def merge(self, first: MinHash, second: MinHash) -> MinHash:
        """Signature of the union of the two underlying sets."""
        first._check_compatible(second)
        values = np.minimum(first.hashvalues, second.hashvalues)
        return MinHash(values, self.num_perm, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MinHashFactory(num_perm={self.num_perm}, seed={self.seed})"


@lru_cache(maxsize=None)
def _jaccard_distance_table(num_perm: int) -> np.ndarray:
    """``table[a]`` = the distance for ``a`` agreeing positions.

    Indexing a precomputed table makes the batched path bit-identical to the
    scalar ``jaccard_distance`` expression for every possible agreement count.
    """
    table = np.empty(num_perm + 1, dtype=np.float64)
    for agreements in range(num_perm + 1):
        jaccard = float(agreements / num_perm)
        table[agreements] = min(1.0, max(0.0, 1.0 - jaccard))
    table.setflags(write=False)
    return table


def batch_jaccard_distances(
    query: np.ndarray,
    matrix: np.ndarray,
    query_empty: bool = False,
    empty_rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Estimated Jaccard distances between one signature and a signature matrix.

    ``matrix`` has shape ``(n, num_perm)``; one vectorized agreement count
    replaces ``n`` pairwise ``jaccard_distance`` calls.  Rows flagged in
    ``empty_rows`` (and every row when ``query_empty``) get the maximal
    distance 1.0, matching the scalar empty-signature convention.
    """
    count = matrix.shape[0]
    if count == 0:
        return np.empty(0, dtype=np.float64)
    if query_empty:
        return np.ones(count, dtype=np.float64)
    num_perm = int(query.shape[0])
    agreements = np.count_nonzero(matrix == query[np.newaxis, :], axis=1)
    distances = _jaccard_distance_table(num_perm)[agreements]
    if empty_rows is not None:
        distances[empty_rows] = 1.0
    return distances


def pairwise_jaccard_distances(
    queries: np.ndarray,
    stored: np.ndarray,
    query_empty: Optional[np.ndarray] = None,
    empty_rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row-aligned Jaccard distances between two ``(n, num_perm)`` matrices.

    Row ``i`` of ``queries`` is compared with row ``i`` of ``stored`` — the
    multi-query counterpart of :func:`batch_jaccard_distances`, letting the
    batched query engine score every (target attribute, candidate) pair of
    one evidence type with a single agreement count.  Pairs flagged in
    ``query_empty`` / ``empty_rows`` get the maximal distance 1.0, exactly as
    the scalar empty-signature convention demands.
    """
    count = stored.shape[0]
    if count == 0:
        return np.empty(0, dtype=np.float64)
    num_perm = int(stored.shape[1])
    agreements = np.count_nonzero(queries == stored, axis=1)
    distances = _jaccard_distance_table(num_perm)[agreements]
    if query_empty is not None:
        distances[query_empty] = 1.0
    if empty_rows is not None:
        distances[empty_rows] = 1.0
    return distances


def exact_jaccard(first: Iterable[str], second: Iterable[str]) -> float:
    """Exact Jaccard similarity between two token collections.

    Provided for tests and for the small exact-distance paths (e.g. Table I
    style examples) where the approximation is unnecessary.
    """
    first_set = set(first)
    second_set = set(second)
    if not first_set and not second_set:
        return 0.0
    union_size = len(first_set | second_set)
    if union_size == 0:
        return 0.0
    return len(first_set & second_set) / union_size


def exact_jaccard_distance(first: Iterable[str], second: Iterable[str]) -> float:
    """Exact Jaccard distance between two token collections."""
    return 1.0 - exact_jaccard(first, second)
