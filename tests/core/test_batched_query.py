"""Oracle harness for the batched query engine.

``D3L.query`` (sequential per-attribute fan-out, per-pair Algorithm 2) is
the oracle; ``D3L.query_batch`` and ``related_attributes_bulk`` must
reproduce its answers *exactly* — same rankings, same combined and
per-evidence distances, same aligned matches with the same Equation 2
weights, same tie order — across seeds, evidence subsets, weight settings,
and degenerate lakes.
"""

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.weights import EvidenceWeights
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lake.datalake import DataLake
from repro.tables.table import Table


def assert_identical_answers(sequential, batched):
    """Full structural equality of two QueryResults."""
    assert sequential.target_name == batched.target_name
    assert sequential.target_arity == batched.target_arity
    assert sequential.requested_k == batched.requested_k
    assert [result.table_name for result in sequential.results] == [
        result.table_name for result in batched.results
    ]
    assert [result.distance for result in sequential.results] == [
        result.distance for result in batched.results
    ]
    for first, second in zip(sequential.results, batched.results):
        assert first.evidence_distances == second.evidence_distances
        assert [
            (match.target_attribute, match.source, match.distances, match.weights)
            for match in first.matches
        ] == [
            (match.target_attribute, match.source, match.distances, match.weights)
            for match in second.matches
        ]


def _engine(lake, **config_overrides):
    defaults = dict(num_hashes=64, num_trees=8, min_candidates=20, embedding_dimension=16)
    defaults.update(config_overrides)
    engine = D3L(config=D3LConfig(**defaults))
    engine.index_lake(lake)
    return engine


@pytest.fixture(scope="module", params=[3, 21, 99])
def seeded_corpus(request):
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=4,
            tables_per_base=3,
            base_rows=50,
            min_rows=20,
            max_rows=40,
            seed=request.param,
        )
    )


@pytest.fixture(scope="module")
def seeded_engine(seeded_corpus):
    return _engine(seeded_corpus.lake)


class TestOracleEquivalence:
    def test_identical_across_seeds_and_targets(self, seeded_corpus, seeded_engine):
        for name in seeded_corpus.lake.table_names[::4]:
            target = seeded_corpus.lake.table(name)
            assert_identical_answers(
                seeded_engine.query(target, k=5),
                seeded_engine.query_batch(target, k=5),
            )

    @pytest.mark.parametrize(
        "evidence_types",
        [
            [EvidenceType.NAME],
            [EvidenceType.DISTRIBUTION],
            [EvidenceType.NAME, EvidenceType.DISTRIBUTION],
            [EvidenceType.VALUE, EvidenceType.EMBEDDING, EvidenceType.FORMAT],
        ],
    )
    def test_identical_per_evidence_subset(
        self, seeded_corpus, seeded_engine, evidence_types
    ):
        target = seeded_corpus.lake.tables[0]
        assert_identical_answers(
            seeded_engine.query(target, k=4, evidence_types=evidence_types),
            seeded_engine.query_batch(target, k=4, evidence_types=evidence_types),
        )

    @pytest.mark.parametrize(
        "weights",
        [
            EvidenceWeights.uniform(),
            EvidenceWeights.single(EvidenceType.NAME),
            EvidenceWeights(
                {
                    EvidenceType.NAME: 0.9,
                    EvidenceType.VALUE: 0.1,
                    EvidenceType.FORMAT: 0.4,
                    EvidenceType.EMBEDDING: 0.0,
                    EvidenceType.DISTRIBUTION: 0.7,
                }
            ),
        ],
    )
    def test_identical_per_weight_setting(self, seeded_corpus, seeded_engine, weights):
        target = seeded_corpus.lake.tables[1]
        assert_identical_answers(
            seeded_engine.query(target, k=4, weights=weights),
            seeded_engine.query_batch(target, k=4, weights=weights),
        )

    def test_identical_with_self_included(self, seeded_corpus, seeded_engine):
        target = seeded_corpus.lake.tables[2]
        assert_identical_answers(
            seeded_engine.query(target, k=4, exclude_self=False),
            seeded_engine.query_batch(target, k=4, exclude_self=False),
        )

    def test_identical_on_profiled_target(self, seeded_corpus, seeded_engine):
        target = seeded_corpus.lake.tables[0]
        profile = seeded_engine.profile_target(target)
        assert_identical_answers(
            seeded_engine.query(target, k=5),
            seeded_engine.query_batch(profile, k=5),
        )

    def test_k_must_be_positive(self, seeded_engine, seeded_corpus):
        with pytest.raises(ValueError):
            seeded_engine.query_batch(seeded_corpus.lake.tables[0], k=0)


class TestDegenerateLakes:
    def _roundtrip(self, lake, target, **query_kwargs):
        engine = _engine(lake)
        assert_identical_answers(
            engine.query(target, k=3, **query_kwargs),
            engine.query_batch(target, k=3, **query_kwargs),
        )
        return engine

    def test_all_numeric_lake(self):
        tables = [
            Table.from_dict(
                f"numeric{i}",
                {
                    "amount": [float(i + j) for j in range(30)],
                    "total": [float(i * j % 17) for j in range(30)],
                },
            )
            for i in range(5)
        ]
        lake = DataLake("numeric", tables)
        self._roundtrip(lake, tables[0])

    def test_all_text_lake(self):
        tables = [
            Table.from_dict(
                f"text{i}",
                {
                    "city": ["belfast", "salford", "york", "leeds"] * 5,
                    "street": [f"street {i} {j}" for j in range(20)],
                },
            )
            for i in range(4)
        ]
        lake = DataLake("text", tables)
        self._roundtrip(lake, tables[1])

    def test_single_attribute_tables(self):
        tables = [
            Table.from_dict(f"single{i}", {"name": [f"value {i} {j}" for j in range(10)]})
            for i in range(3)
        ]
        lake = DataLake("single", tables)
        self._roundtrip(lake, tables[0])

    def test_empty_extent_tables(self):
        tables = [
            Table.from_dict("empty_a", {"col": [], "other": []}),
            Table.from_dict("empty_b", {"col": [], "different": []}),
            Table.from_dict(
                "full", {"col": ["x", "y", "z"], "other": ["1", "2", "3"]}
            ),
        ]
        lake = DataLake("empties", tables)
        self._roundtrip(lake, tables[0])
        self._roundtrip(lake, tables[2])

    def test_target_not_in_lake(self):
        tables = [
            Table.from_dict(f"lake{i}", {"city": ["belfast", "york"], "n": ["1", "2"]})
            for i in range(3)
        ]
        lake = DataLake("lake", tables)
        stranger = Table.from_dict("stranger", {"city": ["belfast", "leeds"]})
        self._roundtrip(lake, stranger)

    def test_zero_attribute_profile_target(self):
        from repro.core.profiles import TableProfile

        tables = [
            Table.from_dict(f"lake{i}", {"city": ["belfast", "york"]}) for i in range(2)
        ]
        lake = DataLake("lake", tables)
        engine = _engine(lake)
        profile = TableProfile(
            table_name="no_columns",
            attributes={},
            subject_attribute=None,
            arity=0,
            cardinality=0,
        )
        assert engine.query(profile, k=3).results == []
        assert engine.query_batch(profile, k=3).results == []
        assert engine.query_batch(profile, k=3, workers=3).results == []


class TestRelatedAttributesBulk:
    def test_bulk_matches_sequential_per_attribute(self, seeded_corpus, seeded_engine):
        target = seeded_corpus.lake.tables[0]
        bulk = seeded_engine.related_attributes_bulk(target, k=6)
        assert set(bulk) == {column.name for column in target.columns}
        for column in target.columns:
            sequential = seeded_engine.related_attributes(target, column.name, k=6)
            assert [
                (entry.ref, entry.distance, entry.distances) for entry in sequential
            ] == [
                (entry.ref, entry.distance, entry.distances)
                for entry in bulk[column.name]
            ]

    def test_bulk_respects_attribute_selection(self, seeded_corpus, seeded_engine):
        target = seeded_corpus.lake.tables[0]
        names = [column.name for column in target.columns][:2]
        bulk = seeded_engine.related_attributes_bulk(target, attribute_names=names, k=3)
        assert list(bulk) == names

    def test_bulk_rejects_unknown_attribute(self, seeded_corpus, seeded_engine):
        with pytest.raises(KeyError):
            seeded_engine.related_attributes_bulk(
                seeded_corpus.lake.tables[0], attribute_names=["no_such_column"]
            )

    def test_bulk_rejects_nonpositive_k(self, seeded_corpus, seeded_engine):
        with pytest.raises(ValueError):
            seeded_engine.related_attributes_bulk(seeded_corpus.lake.tables[0], k=0)

    def test_bulk_custom_weights(self, seeded_corpus, seeded_engine):
        target = seeded_corpus.lake.tables[1]
        weights = EvidenceWeights.single(EvidenceType.NAME)
        column = target.columns[0]
        sequential = seeded_engine.related_attributes(
            target, column.name, k=4, weights=weights
        )
        bulk = seeded_engine.related_attributes_bulk(
            target, attribute_names=[column.name], k=4, weights=weights
        )
        assert [(entry.ref, entry.distance) for entry in sequential] == [
            (entry.ref, entry.distance) for entry in bulk[column.name]
        ]
