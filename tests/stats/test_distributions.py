"""Tests for empirical distributions and the Equation 2 CCDF weights."""

import pytest

from repro.stats.distributions import EmpiricalDistribution, ccdf_weight


class TestEmpiricalDistribution:
    def test_cdf_monotone(self):
        distribution = EmpiricalDistribution([0.1, 0.4, 0.4, 0.9])
        assert distribution.cdf(0.0) <= distribution.cdf(0.5) <= distribution.cdf(1.0)

    def test_cdf_values(self):
        distribution = EmpiricalDistribution([0.2, 0.4, 0.6, 0.8])
        assert distribution.cdf(0.4) == pytest.approx(0.5)
        assert distribution.cdf(1.0) == 1.0
        assert distribution.cdf(0.1) == 0.0

    def test_ccdf_complement(self):
        distribution = EmpiricalDistribution([0.2, 0.4, 0.6, 0.8])
        assert distribution.ccdf(0.4) == pytest.approx(0.5)

    def test_empty_distribution(self):
        distribution = EmpiricalDistribution([])
        assert distribution.cdf(0.5) == 0.0
        assert distribution.ccdf(0.5) == 1.0
        assert distribution.mean() == 0.0
        assert len(distribution) == 0

    def test_quantile(self):
        distribution = EmpiricalDistribution([0.0, 0.5, 1.0])
        assert distribution.quantile(0.5) == pytest.approx(0.5)

    def test_quantile_validation(self):
        distribution = EmpiricalDistribution([0.5])
        with pytest.raises(ValueError):
            distribution.quantile(1.5)
        with pytest.raises(ValueError):
            EmpiricalDistribution([]).quantile(0.5)

    def test_values_are_sorted_copy(self):
        distribution = EmpiricalDistribution([0.9, 0.1])
        assert distribution.values == [0.1, 0.9]

    def test_mean(self):
        assert EmpiricalDistribution([0.0, 1.0]).mean() == pytest.approx(0.5)


class TestCcdfWeight:
    def test_smallest_distance_gets_largest_weight(self):
        population = [0.1, 0.5, 0.9]
        assert ccdf_weight(0.1, population) > ccdf_weight(0.9, population)

    def test_largest_distance_gets_zero_weight(self):
        population = [0.1, 0.5, 0.9]
        assert ccdf_weight(0.9, population) == 0.0

    def test_weight_is_fraction_of_larger_values(self):
        population = [0.2, 0.4, 0.6, 0.8]
        assert ccdf_weight(0.4, population) == pytest.approx(0.5)

    def test_empty_population_defaults_to_one(self):
        assert ccdf_weight(0.3, []) == 1.0

    def test_singleton_population_defaults_to_one(self):
        assert ccdf_weight(0.3, [0.3]) == 1.0

    def test_weight_in_unit_interval(self):
        population = [0.1, 0.2, 0.3, 0.7, 0.95]
        for distance in population:
            assert 0.0 <= ccdf_weight(distance, population) <= 1.0
