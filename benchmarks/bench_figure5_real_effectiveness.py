"""Figure 5 / Experiment 3 — precision and recall on the real-style corpus.

The regime the paper emphasises: inconsistently represented values.  The
shape to reproduce is a wider gap than on Synthetic, with D3L ahead of both
TUS and Aurum because its finer-grained features tolerate representational
differences that value-equality evidence does not.
"""

import numpy as np

from conftest import REAL_KS, NUM_TARGETS, run_once

from repro.evaluation.experiments import experiment_effectiveness


def test_figure5_real_effectiveness(benchmark, record_rows, real_suite):
    rows = run_once(
        benchmark,
        experiment_effectiveness,
        real_suite,
        ks=REAL_KS,
        num_targets=NUM_TARGETS,
        seed=5,
    )
    record_rows(
        "figure5_real_effectiveness",
        rows,
        "Figure 5: precision/recall on Smaller Real style corpus (D3L vs TUS vs Aurum)",
    )

    def mean_metric(system, metric):
        return float(np.mean([row[metric] for row in rows if row["system"] == system]))

    # D3L leads both baselines on dirty data (the paper's headline result).
    assert mean_metric("d3l", "recall") >= mean_metric("tus", "recall")
    assert mean_metric("d3l", "recall") >= mean_metric("aurum", "recall")
    assert mean_metric("d3l", "precision") >= mean_metric("tus", "precision")
