"""The four LSH indexes of D3L and their construction (Algorithm 1).

``D3LIndexes`` profiles every attribute of every lake table and inserts its
set representations / embedding vector into the corresponding LSH Forest:

* ``IN`` — MinHash of the attribute-name q-gram set;
* ``IV`` — MinHash of the informative-token set (textual attributes only);
* ``IF`` — MinHash of the format-string set;
* ``IE`` — random projection of the aggregated embedding vector (textual
  attributes only).

Numeric attributes are indexed only in ``IN`` and ``IF``; their extents are
kept in the attribute profiles for the KS-based D evidence (Algorithm 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.profiles import AttributeProfile, TableProfile
from repro.lake.datalake import AttributeRef, DataLake
from repro.lsh.lsh_forest import LSHForest
from repro.lsh.minhash import (
    MinHash,
    MinHashFactory,
    batch_jaccard_distances,
    pairwise_jaccard_distances,
)
from repro.lsh.random_projection import (
    RandomProjection,
    RandomProjectionFactory,
    batch_cosine_distances,
    pairwise_cosine_distances,
)
from repro.ml.subject_attribute import SubjectAttributeClassifier, heuristic_subject_attribute
from repro.stats.ks import ks_statistic_sorted, ks_statistic_sorted_many
from repro.tables.table import Table
from repro.text.embeddings import HashingSubwordEmbedding, WordEmbeddingModel

#: Signature type union used internally.
Signature = object

#: How many mutations the delta journal remembers.  A consumer whose base
#: version fell further behind than this cannot reconstruct the mutated-table
#: set and must fall back to full invalidation.
_MUTATION_LOG_LIMIT = 64


class SignatureMatrix:
    """Per-evidence signature matrix with a ref↔row registry.

    All signatures of one index live in a single ``(N, num_hashes)`` array so
    that the distances between a query signature and any subset of stored
    attributes are one vectorized agreement count (MinHash) or
    boolean-difference popcount (random projection) instead of N pairwise
    calls.  A parallel boolean flag per row marks degenerate signatures
    (empty MinHash / zero-vector projection) whose distance is pinned at 1.0.

    Rows are stable between removals; a removal swaps the last row into the
    vacated slot and updates the registry, so the dense block stays packed.
    """

    def __init__(self, num_hashes: int, dtype: np.dtype) -> None:
        self.num_hashes = num_hashes
        self._dtype = np.dtype(dtype)
        self._matrix = np.empty((0, num_hashes), dtype=self._dtype)
        self._flags = np.empty(0, dtype=bool)
        self._refs: List[AttributeRef] = []
        self._row_of: Dict[AttributeRef, int] = {}
        self._ref_ranks: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, ref: AttributeRef) -> bool:
        return ref in self._row_of

    def row(self, ref: AttributeRef) -> Optional[int]:
        """Current row of ``ref`` (None when not stored)."""
        return self._row_of.get(ref)

    def _ensure_writable(self) -> None:
        """Copy-on-write guard for mutating a matrix adopted as shared views.

        A worker-side index attached through
        :class:`~repro.core.shared.SharedIndexSnapshot` holds read-only views
        over the host's segment; the first delta mutation promotes them to a
        private copy so the shared base stays untouched (and other attached
        workers unaffected).
        """
        if not self._matrix.flags.writeable:
            self._matrix = self._matrix.copy()
        if not self._flags.flags.writeable:
            self._flags = self._flags.copy()

    def add(self, ref: AttributeRef, values: np.ndarray, degenerate: bool) -> None:
        """Insert (or overwrite) the signature row of ``ref``."""
        self._ensure_writable()
        existing = self._row_of.get(ref)
        if existing is not None:
            self._matrix[existing] = values
            self._flags[existing] = degenerate
            return
        count = len(self._refs)
        if count == self._matrix.shape[0]:
            capacity = max(8, 2 * count)
            matrix = np.empty((capacity, self.num_hashes), dtype=self._dtype)
            matrix[:count] = self._matrix[:count]
            self._matrix = matrix
            flags = np.empty(capacity, dtype=bool)
            flags[:count] = self._flags[:count]
            self._flags = flags
        self._matrix[count] = values
        self._flags[count] = degenerate
        self._refs.append(ref)
        self._row_of[ref] = count
        self._ref_ranks = None

    def add_batch(
        self, refs: Sequence[AttributeRef], values: np.ndarray, degenerate: np.ndarray
    ) -> None:
        """Insert many signature rows with one capacity grow and one copy.

        Equivalent to calling :meth:`add` once per ref in order (including
        the overwrite semantics for refs already stored), but appends all the
        genuinely new rows as a single block.
        """
        refs = list(refs)
        values = np.asarray(values)
        degenerate = np.asarray(degenerate, dtype=bool)
        self._ensure_writable()
        fresh_positions: List[int] = []
        fresh_of: Dict[AttributeRef, int] = {}
        for position, ref in enumerate(refs):
            existing = self._row_of.get(ref)
            if existing is not None:
                self._matrix[existing] = values[position]
                self._flags[existing] = degenerate[position]
            elif ref in fresh_of:
                # Duplicate within the batch: later occurrence overwrites.
                fresh_positions[fresh_of[ref]] = position
            else:
                fresh_of[ref] = len(fresh_positions)
                fresh_positions.append(position)
        if not fresh_positions:
            return
        count = len(self._refs)
        needed = count + len(fresh_positions)
        if needed > self._matrix.shape[0]:
            capacity = max(8, 2 * count, needed)
            matrix = np.empty((capacity, self.num_hashes), dtype=self._dtype)
            matrix[:count] = self._matrix[:count]
            self._matrix = matrix
            flags = np.empty(capacity, dtype=bool)
            flags[:count] = self._flags[:count]
            self._flags = flags
        fresh = np.asarray(fresh_positions, dtype=np.intp)
        self._matrix[count:needed] = values[fresh]
        self._flags[count:needed] = degenerate[fresh]
        for offset, position in enumerate(fresh_positions):
            ref = refs[position]
            self._refs.append(ref)
            self._row_of[ref] = count + offset
        self._ref_ranks = None

    def discard(self, ref: AttributeRef) -> None:
        """Remove the row of ``ref`` (no-op when absent), keeping rows packed."""
        row = self._row_of.pop(ref, None)
        if row is None:
            return
        self._ensure_writable()
        last = len(self._refs) - 1
        if row != last:
            self._matrix[row] = self._matrix[last]
            self._flags[row] = self._flags[last]
            moved = self._refs[last]
            self._refs[row] = moved
            self._row_of[moved] = row
        self._refs.pop()
        self._ref_ranks = None

    def discard_batch(self, refs: Sequence[AttributeRef]) -> int:
        """Remove many rows in one stable compaction; returns rows dropped.

        Equivalent to calling :meth:`discard` once per ref except for the
        physical row order of the survivors: the sequential path swap-packs
        (order depends on removal order), this path compacts stably (order
        is the surviving subsequence).  No consumer observes the
        difference — lookups go through the ref→row registry and tie order
        through :meth:`ref_ranks`, both row-order independent — and the
        batched path costs one fancy-index copy instead of up to
        ``len(refs)`` per-row swap chains.
        """
        dropped = [
            row for row in (self._row_of.pop(ref, None) for ref in refs)
            if row is not None
        ]
        if not dropped:
            return 0
        self._ensure_writable()
        count = len(self._refs)
        keep = np.ones(count, dtype=bool)
        keep[dropped] = False
        keep_rows = np.flatnonzero(keep)
        # Fancy indexing copies, so writing the compacted block back into
        # the prefix of the live arrays cannot alias itself.
        self._matrix[: keep_rows.size] = self._matrix[:count][keep_rows]
        self._flags[: keep_rows.size] = self._flags[:count][keep_rows]
        self._refs = [self._refs[row] for row in keep_rows]
        self._row_of = {ref: row for row, ref in enumerate(self._refs)}
        self._ref_ranks = None
        return len(dropped)

    def gather(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Signature rows and degeneracy flags for ``rows``."""
        return self._matrix[rows], self._flags[rows]

    def ref_ranks(self) -> np.ndarray:
        """Rank of each row's ref in sorted-ref order (cached between mutations).

        Because the rank is a strictly monotone function of the ref, sorting
        candidate rows by ``(distance, rank)`` — one ``np.lexsort`` — yields
        exactly the ``(distance, ref)`` tie order of the scalar lookup path
        without any per-pair Python comparisons.
        """
        count = len(self._refs)
        if self._ref_ranks is None or self._ref_ranks.shape[0] != count:
            order = sorted(range(count), key=self._refs.__getitem__)
            ranks = np.empty(count, dtype=np.intp)
            ranks[order] = np.arange(count, dtype=np.intp)
            self._ref_ranks = ranks
        return self._ref_ranks

    def resolve(self, refs: Sequence[AttributeRef]) -> Tuple[List[int], List[int]]:
        """``(positions, rows)`` of the refs present in the registry."""
        positions: List[int] = []
        rows: List[int] = []
        row_of = self._row_of.get
        for position, ref in enumerate(refs):
            row = row_of(ref)
            if row is not None:
                positions.append(position)
                rows.append(row)
        return positions, rows

    def compact(self) -> None:
        """Trim the backing arrays to exactly the populated rows.

        Rows, the registry, and all distances are unchanged; only the spare
        growth capacity is released — useful for long-lived engines after
        bulk removals.  (Persistence does not need it: ``export_state``
        slices exactly the populated rows.)
        """
        count = len(self._refs)
        if self._matrix.shape[0] != count:
            self._matrix = np.ascontiguousarray(self._matrix[:count])
            self._flags = np.ascontiguousarray(self._flags[:count])

    @property
    def refs(self) -> List[AttributeRef]:
        """Stored refs in row order (row ``i`` belongs to ``refs[i]``)."""
        return list(self._refs)

    def export_state(
        self, copy: bool = True
    ) -> Tuple[List[AttributeRef], np.ndarray, np.ndarray]:
        """``(refs, matrix, flags)`` covering exactly the populated rows.

        ``copy=False`` returns trimmed *views* of the live arrays instead of
        copies — for callers that only read them once into another buffer
        (the shared-memory snapshot writer); the views must not be mutated.
        """
        count = len(self._refs)
        matrix, flags = self._matrix[:count], self._flags[:count]
        if copy:
            matrix, flags = matrix.copy(), flags.copy()
        return list(self._refs), matrix, flags

    def import_state(
        self, refs: Sequence[AttributeRef], matrix: np.ndarray, flags: np.ndarray
    ) -> None:
        """Restore a state produced by :meth:`export_state` (replaces contents).

        Arrays that are already contiguous with the right dtype — including
        read-only views over a shared-memory segment — are adopted as-is
        (no copy); the matrix then stays a view for the lifetime of the
        restored object, which is what makes worker-side attaches zero-copy.
        """
        matrix = np.ascontiguousarray(matrix, dtype=self._dtype)
        flags = np.ascontiguousarray(flags, dtype=bool)
        refs = list(refs)
        if matrix.shape != (len(refs), self.num_hashes) or flags.shape != (len(refs),):
            raise ValueError(
                f"inconsistent signature-matrix state: {len(refs)} refs, "
                f"matrix {matrix.shape}, flags {flags.shape}"
            )
        self._matrix = matrix
        self._flags = flags
        self._refs = refs
        self._row_of = {ref: row for row, ref in enumerate(refs)}
        self._ref_ranks = None

    def estimated_bytes(self) -> int:
        """Footprint of the populated rows plus the registry references."""
        count = len(self._refs)
        row_bytes = self.num_hashes * self._dtype.itemsize
        return int(count * (row_bytes + 1 + 8))


class D3LIndexes:
    """Attribute profiles plus the four LSH indexes over a data lake."""

    def __init__(
        self,
        config: Optional[D3LConfig] = None,
        embedding_model: Optional[WordEmbeddingModel] = None,
        subject_classifier: Optional[SubjectAttributeClassifier] = None,
    ) -> None:
        self.config = config or D3LConfig()
        self.embedding_model = embedding_model or HashingSubwordEmbedding(
            dimension=self.config.embedding_dimension, seed=self.config.seed
        )
        self.subject_classifier = subject_classifier

        cfg = self.config
        self._minhash_factory = MinHashFactory(num_perm=cfg.num_hashes, seed=cfg.seed)
        self._projection_factory = RandomProjectionFactory(
            num_bits=cfg.num_hashes, seed=cfg.seed + 1
        )
        self._forests: Dict[EvidenceType, LSHForest] = {
            evidence: LSHForest(
                num_hashes=cfg.num_hashes, num_trees=cfg.num_trees, seed=cfg.seed + 2 + i
            )
            for i, evidence in enumerate(EvidenceType.indexed())
        }
        self._signatures: Dict[EvidenceType, Dict[AttributeRef, Signature]] = {
            evidence: {} for evidence in EvidenceType.indexed()
        }
        self._matrices: Dict[EvidenceType, SignatureMatrix] = {
            evidence: SignatureMatrix(
                cfg.num_hashes,
                np.dtype(np.uint8 if evidence is EvidenceType.EMBEDDING else np.uint64),
            )
            for evidence in EvidenceType.indexed()
        }
        self.profiles: Dict[AttributeRef, AttributeProfile] = {}
        self.table_profiles: Dict[str, TableProfile] = {}
        #: Monotonic mutation counter: bumped on every insert/removal so
        #: serving-tier caches (session profile caches, fan-out worker pools)
        #: can detect that a snapshot of this object has gone stale.
        self.version: int = 0
        #: Trailing mutation journal: ``(version after the bump, table name)``
        #: for the last ``_MUTATION_LOG_LIMIT`` mutations.  Lets delta-aware
        #: consumers (session caches, fan-out pools, the join-graph overlap
        #: cache) invalidate per table via :meth:`mutated_tables_since`
        #: instead of wholesale on every version bump.
        self._mutation_log: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------ #
    # profiling
    # ------------------------------------------------------------------ #
    def profile_table(self, table: Table) -> TableProfile:
        """Profile every attribute of ``table`` (without inserting anything)."""
        attributes = {
            column.name: AttributeProfile.build(
                table.name, column, self.embedding_model, self.config
            )
            for column in table.columns
        }
        if self.subject_classifier is not None:
            subject = self.subject_classifier.identify(table)
        else:
            subject = heuristic_subject_attribute(table)
        return TableProfile(
            table_name=table.name,
            attributes=attributes,
            subject_attribute=subject,
            arity=table.arity,
            cardinality=table.cardinality,
        )

    def signatures_for(self, profile: AttributeProfile) -> Dict[EvidenceType, Optional[Signature]]:
        """Compute the per-evidence signatures of a (possibly external) profile.

        Evidence types without usable features (empty set representation,
        zero embedding) map to None so callers skip the corresponding index.
        """
        signatures: Dict[EvidenceType, Optional[Signature]] = {}
        for evidence in (EvidenceType.NAME, EvidenceType.VALUE, EvidenceType.FORMAT):
            tokens = profile.set_representation(evidence)
            signatures[evidence] = self._minhash_factory.from_tokens(tokens) if tokens else None
        if profile.has_embedding():
            signatures[EvidenceType.EMBEDDING] = self._projection_factory.from_vector(
                profile.embedding
            )
        else:
            signatures[EvidenceType.EMBEDDING] = None
        return signatures

    def signature_of(
        self, evidence: EvidenceType, profile: AttributeProfile
    ) -> Optional[Signature]:
        """The signature of one evidence type only (None without features).

        Cheaper than :meth:`signatures_for` when the caller needs a single
        index — e.g. the SA-join graph build signing a subject attribute
        whose stored value signature is missing.
        """
        if evidence is EvidenceType.EMBEDDING:
            if not profile.has_embedding():
                return None
            return self._projection_factory.from_vector(profile.embedding)
        tokens = profile.set_representation(evidence)
        return self._minhash_factory.from_tokens(tokens) if tokens else None

    def batch_signatures(
        self, table_profiles: Sequence[TableProfile]
    ) -> Dict[str, Dict[str, Dict[EvidenceType, Optional[Signature]]]]:
        """Per-attribute signatures of many tables, computed in batched passes.

        One :meth:`MinHashFactory.from_tokens_batch` call per set-backed
        evidence type and one :meth:`RandomProjectionFactory.from_vectors`
        call cover every attribute of every table, so the batch pays for each
        *distinct* token hash once across the whole group instead of once per
        attribute.  The wider the batch, the more vocabulary sharing the
        MinHash kernel can exploit — ``add_lake`` batches the entire lake and
        shard workers batch their whole shard.  Values are bit-identical to
        per-attribute :meth:`signatures_for`.

        Returns ``{table name: {attribute name: {evidence: signature}}}``.
        """
        keys: List[Tuple[str, str]] = []
        profiles: List[AttributeProfile] = []
        signatures: Dict[str, Dict[str, Dict[EvidenceType, Optional[Signature]]]] = {}
        for table_profile in table_profiles:
            per_table: Dict[str, Dict[EvidenceType, Optional[Signature]]] = {}
            signatures[table_profile.table_name] = per_table
            for name, profile in table_profile.attributes.items():
                per_table[name] = dict.fromkeys(EvidenceType.indexed())
                keys.append((table_profile.table_name, name))
                profiles.append(profile)
        for evidence in (EvidenceType.NAME, EvidenceType.VALUE, EvidenceType.FORMAT):
            token_sets = [profile.set_representation(evidence) for profile in profiles]
            populated = [index for index, tokens in enumerate(token_sets) if tokens]
            batch = self._minhash_factory.from_tokens_batch(
                [token_sets[index] for index in populated]
            )
            for position, index in enumerate(populated):
                table_name, name = keys[index]
                signatures[table_name][name][evidence] = batch[position]
        embedded = [index for index, profile in enumerate(profiles) if profile.has_embedding()]
        projections = self._projection_factory.from_vectors(
            [profiles[index].embedding for index in embedded]
        )
        for position, index in enumerate(embedded):
            table_name, name = keys[index]
            signatures[table_name][name][EvidenceType.EMBEDDING] = projections[position]
        return signatures

    def table_signatures(
        self, table_profile: TableProfile
    ) -> Dict[str, Dict[EvidenceType, Optional[Signature]]]:
        """Per-attribute signatures of one table (a one-table batch)."""
        return self.batch_signatures([table_profile])[table_profile.table_name]

    # ------------------------------------------------------------------ #
    # index construction (Algorithm 1)
    # ------------------------------------------------------------------ #
    def add_table(self, table: Table) -> TableProfile:
        """Profile ``table`` and insert its attributes into the four indexes."""
        table_profile = self.profile_table(table)
        self.add_profiled_table(table_profile)
        return table_profile

    def add_profiled_table(
        self,
        table_profile: TableProfile,
        signatures_by_attribute: Optional[Dict[str, Dict[EvidenceType, Optional[Signature]]]] = None,
    ) -> None:
        """Insert an already profiled table into the four indexes.

        ``signatures_by_attribute`` (as produced by :meth:`table_signatures`)
        lets callers that computed signatures elsewhere — notably the shard
        workers of :class:`~repro.core.parallel.ParallelIndexBuilder` — feed
        them straight into the buffered forest inserts and one batched
        signature-matrix append per evidence type.
        """
        if signatures_by_attribute is None:
            signatures_by_attribute = self.table_signatures(table_profile)
        previous = self.table_profiles.get(table_profile.table_name)
        if previous is not None:
            # Re-indexing is replace semantics (matching DataLake.add_table):
            # drop every entry of the previous profile first, so attributes
            # that no longer exist don't linger as ghost candidates in the
            # forests and signature matrices.
            self._discard_table_entries(previous)
        self.table_profiles[table_profile.table_name] = table_profile
        for name, profile in table_profile.attributes.items():
            self.profiles[profile.ref] = profile
        for evidence in EvidenceType.indexed():
            refs: List[AttributeRef] = []
            raws: List[np.ndarray] = []
            flags: List[bool] = []
            forest = self._forests[evidence]
            stored = self._signatures[evidence]
            for name, profile in table_profile.attributes.items():
                signature = signatures_by_attribute[name][evidence]
                if signature is None:
                    continue
                raw = _raw(signature)
                stored[profile.ref] = signature
                forest.insert(profile.ref, raw)
                refs.append(profile.ref)
                raws.append(raw)
                flags.append(_is_degenerate(signature))
            if refs:
                self._matrices[evidence].add_batch(
                    refs, np.vstack(raws), np.asarray(flags, dtype=bool)
                )
        self.version += 1
        self._log_mutation(table_profile.table_name)

    def add_lake(
        self,
        lake: DataLake,
        workers: Optional[int] = None,
        backend: str = "process",
    ) -> None:
        """Index every table of ``lake``, in sorted table-name order.

        The sorted order makes index construction independent of lake
        insertion order, so serial and sharded builds (``workers > 1``, via
        :class:`~repro.core.parallel.ParallelIndexBuilder`, over any
        ``backend`` from :data:`~repro.core.execution.BACKENDS`) produce
        identical index contents.
        """
        if workers is not None and workers > 1:
            from repro.core.parallel import ParallelIndexBuilder

            ParallelIndexBuilder(self, workers=workers, backend=backend).build(lake)
            return
        table_profiles = [
            self.profile_table(lake.table(name)) for name in sorted(lake.table_names)
        ]
        signatures = self.batch_signatures(table_profiles)
        for table_profile in table_profiles:
            self.add_profiled_table(table_profile, signatures[table_profile.table_name])

    def remove_table(self, table_name: str) -> bool:
        """Remove a table's attributes from every index (incremental maintenance).

        Data lakes change over time (the paper cites Goods' rapidly changing
        datasets as a motivating setting); removal plus re-insertion keeps
        the indexes consistent without rebuilding them from scratch.
        Returns True when the table was indexed, False otherwise.
        """
        table_profile = self.table_profiles.pop(table_name, None)
        if table_profile is None:
            return False
        self._discard_table_entries(table_profile)
        self.version += 1
        self._log_mutation(table_name)
        return True

    def remove_tables(self, table_names: Sequence[str]) -> int:
        """Remove many tables in one batched pass; returns how many were indexed.

        Equivalent to calling :meth:`remove_table` per name (same registry
        state, same per-table version bumps and journal entries, same query
        answers) but collects every doomed ref first and then discards per
        evidence type with one forest tombstone pass
        (:meth:`~repro.lsh.lsh_forest.LSHForest.remove_batch`) and one
        stable matrix compaction (:meth:`SignatureMatrix.discard_batch`)
        instead of per-table swap chains — the batched half of the worker
        delta replay path.
        """
        refs_by_evidence: Dict[EvidenceType, List[AttributeRef]] = {
            evidence: [] for evidence in EvidenceType.indexed()
        }
        removed: List[str] = []
        for table_name in table_names:
            table_profile = self.table_profiles.pop(table_name, None)
            if table_profile is None:
                continue
            removed.append(table_name)
            for profile in table_profile.attributes.values():
                self.profiles.pop(profile.ref, None)
                for evidence in EvidenceType.indexed():
                    if self._signatures[evidence].pop(profile.ref, None) is not None:
                        refs_by_evidence[evidence].append(profile.ref)
        for evidence, refs in refs_by_evidence.items():
            if refs:
                self._forests[evidence].remove_batch(refs)
                self._matrices[evidence].discard_batch(refs)
        for table_name in removed:
            self.version += 1
            self._log_mutation(table_name)
        return len(removed)

    def _discard_table_entries(self, table_profile: TableProfile) -> None:
        """Drop every per-attribute entry of ``table_profile`` from the indexes.

        Shared by :meth:`remove_table` and the replace path of
        :meth:`add_profiled_table`; touches neither ``table_profiles`` nor
        the version counter.
        """
        for profile in table_profile.attributes.values():
            self.profiles.pop(profile.ref, None)
            for evidence in EvidenceType.indexed():
                if self._signatures[evidence].pop(profile.ref, None) is not None:
                    self._forests[evidence].remove(profile.ref)
                    self._matrices[evidence].discard(profile.ref)

    def _log_mutation(self, table_name: str) -> None:
        """Journal one mutation under the just-bumped version counter."""
        self._mutation_log.append((self.version, table_name))
        if len(self._mutation_log) > _MUTATION_LOG_LIMIT:
            del self._mutation_log[: len(self._mutation_log) - _MUTATION_LOG_LIMIT]

    def mutated_tables_since(self, version: int) -> Optional[set]:
        """Tables mutated after ``version``, or None when not reconstructible.

        Covers the interval ``(version, self.version]`` from the journal.
        Returns an empty set when ``version`` is current, and None when the
        base version is unknown (e.g. a restored engine whose journal was not
        persisted) or has fallen out of the trailing window — callers must
        then fall back to full invalidation.
        """
        if version == self.version:
            return set()
        if version > self.version or version < 0:
            return None
        if self.version - version > len(self._mutation_log):
            return None
        return {name for logged, name in self._mutation_log if logged > version}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def table_names(self) -> List[str]:
        """Names of all indexed tables."""
        return list(self.table_profiles)

    @property
    def attribute_count(self) -> int:
        """Number of profiled attributes."""
        return len(self.profiles)

    def forest(self, evidence: EvidenceType) -> LSHForest:
        """The LSH Forest backing an indexed evidence type."""
        return self._forests[evidence]

    def signature(self, evidence: EvidenceType, ref: AttributeRef) -> Optional[Signature]:
        """Stored signature of an indexed attribute (None when not indexed)."""
        return self._signatures[evidence].get(ref)

    def subject_attribute(self, table_name: str) -> Optional[str]:
        """Subject attribute of an indexed table."""
        table_profile = self.table_profiles.get(table_name)
        return table_profile.subject_attribute if table_profile else None

    # ------------------------------------------------------------------ #
    # lookups and distances
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        evidence: EvidenceType,
        profile: AttributeProfile,
        k: int,
        exclude_table: Optional[str] = None,
        query_signatures: Optional[Dict[EvidenceType, Optional[Signature]]] = None,
        max_distance: Optional[float] = None,
    ) -> List[Tuple[AttributeRef, float]]:
        """Retrieve up to ``k`` related attributes with their estimated distances.

        Results are sorted by ascending distance.  Attributes of
        ``exclude_table`` (normally the target itself, when it is a lake
        member) are filtered out.  ``max_distance`` restricts the result to
        candidates at least as similar as the LSH threshold demands — the
        strict reading of ``a' ∈ I.lookup(a)`` used by the Algorithm 2 guards
        and the join-graph construction.
        """
        if not evidence.is_indexed:
            raise ValueError("distribution evidence has no LSH index to look up")
        signatures = query_signatures or self.signatures_for(profile)
        signature = signatures[evidence]
        if signature is None:
            return []
        candidates = self._forests[evidence].query(_raw(signature), k)
        if exclude_table is not None:
            candidates = [ref for ref in candidates if ref.table != exclude_table]
        positions, rows = self._matrices[evidence].resolve(candidates)
        if not rows:
            return []
        refs = [candidates[position] for position in positions]
        distances = self._batch_signature_distances(
            evidence, signature, np.asarray(rows, dtype=np.intp)
        )
        results = list(zip(refs, distances.tolist()))
        if max_distance is not None:
            results = [pair for pair in results if pair[1] <= max_distance]
        results.sort(key=lambda pair: (pair[1], pair[0]))
        return results[:k]

    def threshold_distance(self) -> float:
        """The distance corresponding to the configured LSH similarity threshold."""
        return 1.0 - self.config.lsh_threshold

    def attribute_distance(
        self,
        evidence: EvidenceType,
        profile: AttributeProfile,
        ref: AttributeRef,
        query_signatures: Optional[Dict[EvidenceType, Optional[Signature]]] = None,
    ) -> float:
        """Estimated distance of one evidence type between a profile and an
        indexed attribute (1.0 when either side lacks that evidence)."""
        if evidence is EvidenceType.DISTRIBUTION:
            other = self.profiles.get(ref)
            if other is None or not profile.is_numeric or not other.is_numeric:
                return 1.0
            return ks_statistic_sorted(profile.numeric_sorted, other.numeric_sorted)
        signatures = query_signatures or self.signatures_for(profile)
        signature = signatures[evidence]
        stored = self._signatures[evidence].get(ref)
        if signature is None or stored is None:
            return 1.0
        return _signature_distance(signature, stored)

    def batch_attribute_distances(
        self,
        evidence: EvidenceType,
        profile: AttributeProfile,
        refs: Sequence[AttributeRef],
        query_signatures: Optional[Dict[EvidenceType, Optional[Signature]]] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`attribute_distance` over many stored attributes.

        Returns one distance per entry of ``refs`` (1.0 for refs that lack
        the evidence), computed with a single matrix operation for the
        signature-backed types.  Values are identical to the scalar path.
        """
        refs = list(refs)
        distances = np.ones(len(refs), dtype=np.float64)
        if not refs:
            return distances
        if evidence is EvidenceType.DISTRIBUTION:
            if not profile.is_numeric:
                return distances
            query_sorted = profile.numeric_sorted
            for position, ref in enumerate(refs):
                other = self.profiles.get(ref)
                if other is None or not other.is_numeric:
                    continue
                distances[position] = ks_statistic_sorted(query_sorted, other.numeric_sorted)
            return distances
        signatures = query_signatures or self.signatures_for(profile)
        signature = signatures[evidence]
        if signature is None:
            return distances
        positions, rows = self._matrices[evidence].resolve(refs)
        if not rows:
            return distances
        stored_distances = self._batch_signature_distances(
            evidence, signature, np.asarray(rows, dtype=np.intp)
        )
        distances[np.asarray(positions, dtype=np.intp)] = stored_distances
        return distances

    def multi_lookup(
        self,
        evidence: EvidenceType,
        signatures: Sequence[Optional[Signature]],
        k: int,
        exclude_table: Optional[str] = None,
        max_distance: Optional[float] = None,
        exclude_tables: Optional[Sequence[Optional[str]]] = None,
    ) -> List[List[Tuple[AttributeRef, float]]]:
        """:meth:`lookup` for many query signatures of one evidence type.

        Forest descents still happen per signature (each query has its own
        prefix keys), but every retrieved candidate row of every query is
        resolved against the :class:`SignatureMatrix` and scored in a single
        gather plus one row-aligned distance kernel — the multi-query
        batching the batched query engine fans out over.  Entry ``i`` of the
        result equals ``lookup(evidence, ..., query_signatures={...})`` for
        signature ``i`` exactly (same candidates, distances, and tie order);
        ``None`` signatures yield empty answers.

        ``exclude_tables`` gives each query its own exclusion (entry ``i``
        applies to signature ``i``), which is how the SA-join graph build
        batches one probe per lake table while every probe still excludes
        its own table; it overrides ``exclude_table`` when provided.
        """
        if not evidence.is_indexed:
            raise ValueError("distribution evidence has no LSH index to look up")
        if exclude_tables is not None and len(exclude_tables) != len(signatures):
            raise ValueError("exclude_tables must align with signatures")
        forest = self._forests[evidence]
        matrix = self._matrices[evidence]
        # One shared per-tree pass covers every query's forest descent; the
        # candidate order may differ from per-query descents, which the
        # (distance, ref rank) re-ranking below makes irrelevant.
        candidates_per_query = forest.multi_query(
            [None if signature is None else _raw(signature) for signature in signatures],
            k,
        )
        refs_per_query: List[List[AttributeRef]] = []
        rows_per_query: List[List[int]] = []
        for position, signature in enumerate(signatures):
            if signature is None:
                refs_per_query.append([])
                rows_per_query.append([])
                continue
            excluded = (
                exclude_tables[position] if exclude_tables is not None else exclude_table
            )
            candidates = candidates_per_query[position]
            if excluded is not None:
                candidates = [ref for ref in candidates if ref.table != excluded]
            positions, rows = matrix.resolve(candidates)
            refs_per_query.append([candidates[position] for position in positions])
            rows_per_query.append(rows)
        distance_blocks = self._pairwise_signature_distances(
            evidence, signatures, rows_per_query
        )
        ranks = matrix.ref_ranks()
        results: List[List[Tuple[AttributeRef, float]]] = []
        for refs, rows, distances in zip(
            refs_per_query, rows_per_query, distance_blocks
        ):
            if not rows:
                results.append([])
                continue
            row_ranks = ranks[np.asarray(rows, dtype=np.intp)]
            if max_distance is not None:
                keep = np.flatnonzero(distances <= max_distance)
                distances = distances[keep]
                row_ranks = row_ranks[keep]
                refs = [refs[index] for index in keep.tolist()]
            # (distance, ref rank) == (distance, ref): the scalar tie order,
            # without per-pair Python comparisons.
            order = np.lexsort((row_ranks, distances))[:k].tolist()
            values = distances.tolist()
            results.append([(refs[index], values[index]) for index in order])
        return results

    def multi_batch_attribute_distances(
        self,
        evidence: EvidenceType,
        profiles: Sequence[AttributeProfile],
        refs_per_profile: Sequence[Sequence[AttributeRef]],
        signatures: Optional[Sequence[Optional[Signature]]] = None,
    ) -> List[np.ndarray]:
        """:meth:`batch_attribute_distances` for many query profiles at once.

        Signature-backed evidence types gather every (profile, candidate)
        pair's matrix row in one pass and score them with a single
        row-aligned kernel call; the distribution type runs the Algorithm 2
        KS loop of each profile as one vectorized sweep over the candidates
        sharing its cached sorted extent
        (:func:`~repro.stats.ks.ks_statistic_sorted_many`).  Entry ``i``
        equals ``batch_attribute_distances(evidence, profiles[i],
        refs_per_profile[i], ...)`` exactly.
        """
        profiles = list(profiles)
        if evidence is EvidenceType.DISTRIBUTION:
            outputs: List[np.ndarray] = []
            for profile, refs in zip(profiles, refs_per_profile):
                distances = np.ones(len(refs), dtype=np.float64)
                if profile.is_numeric and len(refs):
                    extents: List[np.ndarray] = []
                    positions: List[int] = []
                    for position, ref in enumerate(refs):
                        other = self.profiles.get(ref)
                        if other is None or not other.is_numeric:
                            continue
                        positions.append(position)
                        extents.append(other.numeric_sorted)
                    if positions:
                        distances[np.asarray(positions, dtype=np.intp)] = (
                            ks_statistic_sorted_many(profile.numeric_sorted, extents)
                        )
                outputs.append(distances)
            return outputs
        if signatures is None:
            signatures = [self.signatures_for(profile)[evidence] for profile in profiles]
        matrix = self._matrices[evidence]
        outputs = [
            np.ones(len(refs), dtype=np.float64) for refs in refs_per_profile
        ]
        positions_per_profile: List[List[int]] = []
        rows_per_profile: List[List[int]] = []
        for signature, refs in zip(signatures, refs_per_profile):
            if signature is None:
                positions_per_profile.append([])
                rows_per_profile.append([])
                continue
            positions, rows = matrix.resolve(refs)
            positions_per_profile.append(positions)
            rows_per_profile.append(rows)
        distance_blocks = self._pairwise_signature_distances(
            evidence, signatures, rows_per_profile
        )
        for output, positions, distances in zip(
            outputs, positions_per_profile, distance_blocks
        ):
            if positions:
                output[np.asarray(positions, dtype=np.intp)] = distances
        return outputs

    def _pairwise_signature_distances(
        self,
        evidence: EvidenceType,
        signatures: Sequence[Optional[Signature]],
        rows_per_query: Sequence[Sequence[int]],
    ) -> List[np.ndarray]:
        """Distances of many (query signature, matrix row) pair groups.

        All pair groups are concatenated and scored with one gather and one
        row-aligned kernel call, then split back per query.  Values are
        identical to one :meth:`_batch_signature_distances` call per query.
        """
        counts = [len(rows) for rows in rows_per_query]
        total = sum(counts)
        if total == 0:
            return [np.empty(0, dtype=np.float64) for _ in counts]
        all_rows = np.concatenate(
            [np.asarray(rows, dtype=np.intp) for rows in rows_per_query if rows]
        )
        populated = [index for index, count in enumerate(counts) if count]
        raws = np.vstack([_raw(signatures[index]) for index in populated])
        degenerate_queries = np.array(
            [_is_degenerate(signatures[index]) for index in populated], dtype=bool
        )
        group_sizes = [counts[index] for index in populated]
        group_of_pair = np.repeat(np.arange(len(populated), dtype=np.intp), group_sizes)
        queries = raws[group_of_pair]
        query_flags = degenerate_queries[group_of_pair]
        stored, degenerate_rows = self._matrices[evidence].gather(all_rows)
        if evidence is EvidenceType.EMBEDDING:
            flat = pairwise_cosine_distances(
                queries, stored, query_zero=query_flags, zero_rows=degenerate_rows
            )
        else:
            flat = pairwise_jaccard_distances(
                queries, stored, query_empty=query_flags, empty_rows=degenerate_rows
            )
        blocks = [np.empty(0, dtype=np.float64) for _ in counts]
        offset = 0
        for index, size in zip(populated, group_sizes):
            blocks[index] = flat[offset : offset + size]
            offset += size
        return blocks

    def _batch_signature_distances(
        self, evidence: EvidenceType, signature: Signature, rows: np.ndarray
    ) -> np.ndarray:
        """Distances between one query signature and the given matrix rows."""
        stored, degenerate = self._matrices[evidence].gather(rows)
        if isinstance(signature, MinHash):
            return batch_jaccard_distances(
                signature.hashvalues,
                stored,
                query_empty=signature.is_empty(),
                empty_rows=degenerate,
            )
        if isinstance(signature, RandomProjection):
            return batch_cosine_distances(
                signature.bits,
                stored,
                query_zero=signature.is_zero,
                zero_rows=degenerate,
            )
        raise TypeError(f"unsupported signature type: {type(signature)!r}")

    # ------------------------------------------------------------------ #
    # space accounting (Table II)
    # ------------------------------------------------------------------ #
    def index_bytes(self) -> Dict[str, int]:
        """Approximate per-index memory footprint."""
        sizes = {
            f"I{evidence.value}": self._forests[evidence].estimated_bytes()
            + self._matrices[evidence].estimated_bytes()
            for evidence in EvidenceType.indexed()
        }
        sizes["profiles"] = sum(profile.estimated_bytes() for profile in self.profiles.values())
        return sizes

    def estimated_bytes(self) -> int:
        """Total approximate footprint of indexes plus profiles."""
        return sum(self.index_bytes().values())


def _raw(signature: Signature) -> np.ndarray:
    """The underlying array of a MinHash or RandomProjection signature."""
    if isinstance(signature, MinHash):
        return signature.hashvalues
    if isinstance(signature, RandomProjection):
        return signature.bits
    raise TypeError(f"unsupported signature type: {type(signature)!r}")


def _is_degenerate(signature: Signature) -> bool:
    """True for signatures whose pairwise distance is pinned at 1.0."""
    if isinstance(signature, MinHash):
        return signature.is_empty()
    if isinstance(signature, RandomProjection):
        return signature.is_zero
    raise TypeError(f"unsupported signature type: {type(signature)!r}")


def _signature_distance(first: Signature, second: Signature) -> float:
    """Estimated distance between two signatures of the same kind."""
    if isinstance(first, MinHash) and isinstance(second, MinHash):
        if first.is_empty() or second.is_empty():
            return 1.0
        return first.jaccard_distance(second)
    if isinstance(first, RandomProjection) and isinstance(second, RandomProjection):
        return first.cosine_distance(second)
    raise TypeError("cannot compare signatures of different kinds")
