"""The unified discovery-service API: request/response protocol + session.

The D3L engine is a *service*: Algorithm 1 indexes a lake once, then answers
many top-k related-dataset queries over the five evidence types.  This module
is the stable serving surface over that engine:

* :class:`QueryRequest` — a frozen, validated description of one discovery
  query: the target (a raw :class:`~repro.tables.table.Table` or a
  pre-profiled :class:`~repro.core.profiles.TableProfile`), the answer size
  ``k``, an optional evidence-type subset, optional Equation 3 weight
  overrides, the ``explain`` flag, the D3L+J ``joins`` flag, and the fan-out
  ``workers``.  Requests with ``attributes`` ask for attribute-level
  rankings instead of table rankings.
* :class:`QueryResponse` — the machine-readable answer: ranked tables (or
  attributes) with, under ``explain``, the per-evidence distance
  decomposition of Equation 2 — including the CCDF aggregation weights of
  every alignment — plus the Equation 3 ranking weights that produced the
  combined distances, and, for ``joins`` requests, the Algorithm 3
  ``join_paths`` block.  ``to_dict()``/``from_dict()`` round-trip losslessly
  through JSON.
* :func:`execute` — the single execution planner every entry point funnels
  through.  It dispatches to the batched/parallel kernels by default and to
  the sequential oracle on request (``engine="sequential"``); the legacy
  ``D3L.query`` / ``query_batch`` / ``related_attributes`` /
  ``related_attributes_bulk`` methods are deprecation shims over it.
* :class:`DiscoverySession` — the serving façade: wraps a loaded engine,
  memoizes target profiles *and* their query signatures across repeated
  requests (LRU, invalidated when the lake mutates, exactly like the query
  executors), and submits requests through the planner.  Rankings are
  bit-identical to the sequential oracle by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import numbers
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import require_positive
from repro.core.discovery import (
    D3L,
    AttributeSearchResult,
    JoinAugmentedResult,
    QueryResult,
    QueryTarget,
    attribute_signature_maps,
)
from repro.core.evidence import EvidenceType
from repro.core.execution import BACKENDS
from repro.core.joins import JoinEdge, JoinPath
from repro.core.profiles import AttributeMatch, TableProfile
from repro.core.weights import EvidenceWeights
from repro.lake.datalake import AttributeRef
from repro.tables.table import Table

#: Wire-format identifier embedded in every serialized response, so readers
#: can reject payloads from a different protocol revision.
WIRE_FORMAT = "d3l.query_response/v1"

#: Wire-format identifier of serialized requests (the ``repro serve`` POST
#: body).  Optional on inbound payloads — a request dict without the marker
#: is accepted — but emitted by :func:`query_request_to_wire` so logs and
#: captures are self-describing.
REQUEST_WIRE_FORMAT = "d3l.query_request/v1"

#: How many join paths a :meth:`QueryResponse.truncated` copy keeps by
#: default — the same cap the CLI's rendered report applies, so the JSON
#: wire output cannot dwarf the human-readable one.
TRUNCATED_JOIN_PATH_CAP = 20

#: The two execution engines a request may select.  ``batched`` is the
#: default serving path (per-evidence sweeps, optional process fan-out);
#: ``sequential`` is the per-attribute oracle the batched path is verified
#: against — answers are identical either way.
ENGINES = ("batched", "sequential")


# --------------------------------------------------------------------------- #
# request
# --------------------------------------------------------------------------- #


def _coerce_evidence(values: Sequence[object]) -> Tuple[EvidenceType, ...]:
    """Normalise an evidence subset to EvidenceType members, order-preserving.

    Accepts enum members, single-letter codes (``"N"``) and names
    (``"name"``); unknown entries are rejected with the full list of valid
    codes, so a typo in a wire request fails loudly instead of silently
    querying nothing.
    """
    coerced: List[EvidenceType] = []
    for value in values:
        if isinstance(value, EvidenceType):
            coerced.append(value)
            continue
        text = str(value)
        member = None
        for lookup in (
            lambda: EvidenceType(text),
            lambda: EvidenceType(text.upper()),
            lambda: EvidenceType[text.upper()],
        ):
            try:
                member = lookup()
                break
            except (ValueError, KeyError):
                continue
        if member is None:
            valid = ", ".join(
                f"{evidence.value} ({evidence.name.lower()})"
                for evidence in EvidenceType.all()
            )
            raise ValueError(
                f"unknown evidence type {value!r}; valid types: {valid}"
            ) from None
        coerced.append(member)
    subset = tuple(dict.fromkeys(coerced))
    if not subset:
        raise ValueError("evidence subset must not be empty")
    return subset


def _coerce_weights(
    weights: Union[EvidenceWeights, Mapping[object, float]],
) -> EvidenceWeights:
    """Normalise weight overrides to :class:`EvidenceWeights` and validate.

    Mappings may be keyed by enum members or codes/names; values must be
    finite and non-negative (Equation 3 takes a weighted l2 norm — a negative
    weight would be silently meaningless).
    """
    if isinstance(weights, EvidenceWeights):
        values = weights.as_dict()
    else:
        values = {
            _coerce_evidence([key])[0]: float(value) for key, value in weights.items()
        }
    for evidence, value in values.items():
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"weight for evidence type {evidence.value!r} must be finite and "
                f"non-negative, got {value!r}"
            )
    return weights if isinstance(weights, EvidenceWeights) else EvidenceWeights(values)


@dataclass(frozen=True)
class QueryRequest:
    """One validated discovery query against an indexed engine.

    ``attributes`` switches the request to attribute-level discovery (the
    lake attributes most related to each named target column); otherwise the
    request asks for table-level rankings.  Validation happens at
    construction, with the same error messages the legacy entry points and
    :class:`~repro.core.config.D3LConfig` use, so malformed requests never
    reach an engine.
    """

    target: QueryTarget
    k: int = 10
    evidence: Optional[Sequence[object]] = None
    attributes: Optional[Sequence[str]] = None
    weights: Optional[Union[EvidenceWeights, Mapping[object, float]]] = None
    exclude_self: bool = True
    explain: bool = False
    joins: bool = False
    workers: int = 1
    engine: str = "batched"
    backend: str = "process"

    def __post_init__(self) -> None:
        # Duck-typed table targets (anything exposing name/columns, as the
        # legacy engines accepted) pass; plainly wrong inputs fail fast.
        if not isinstance(self.target, TableProfile) and not (
            hasattr(self.target, "name") and hasattr(self.target, "columns")
        ):
            raise TypeError(
                "target must be a Table or a TableProfile, "
                f"got {type(self.target).__name__}"
            )
        # Integral (not int) so numpy integers from array sweeps keep working
        # through the deprecated shims; normalised to plain int for the wire.
        if isinstance(self.k, bool) or not isinstance(self.k, numbers.Integral):
            raise ValueError("k must be an integer")
        require_positive("k", self.k)
        object.__setattr__(self, "k", int(self.k))
        if isinstance(self.workers, bool) or not isinstance(
            self.workers, numbers.Integral
        ):
            raise ValueError("workers must be an integer")
        require_positive("workers", self.workers)
        object.__setattr__(self, "workers", int(self.workers))
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; valid engines: {', '.join(ENGINES)}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"valid backends: {', '.join(BACKENDS)}"
            )
        if self.evidence is not None:
            object.__setattr__(self, "evidence", _coerce_evidence(self.evidence))
        if self.weights is not None:
            object.__setattr__(self, "weights", _coerce_weights(self.weights))
        if self.attributes is not None:
            if self.evidence is not None:
                raise ValueError(
                    "evidence subsets are not supported for attribute-level requests"
                )
            if self.joins:
                raise ValueError(
                    "join paths are not supported for attribute-level requests"
                )
            if self.workers > 1:
                raise ValueError(
                    "workers are not supported for attribute-level requests"
                )
            if isinstance(self.target, TableProfile):
                raise ValueError(
                    "attribute-level requests need a raw Table target "
                    "(profiles do not carry the columns to re-profile)"
                )
            names = tuple(dict.fromkeys(self.attributes))
            if not names:
                raise ValueError("attributes must not be empty when provided")
            for name in names:
                if not self.target.has_column(name):
                    raise KeyError(
                        f"target {self.target.name!r} has no attribute {name!r}"
                    )
            object.__setattr__(self, "attributes", names)

    @property
    def target_name(self) -> str:
        """Name of the query target (table or profile)."""
        return (
            self.target.table_name
            if isinstance(self.target, TableProfile)
            else self.target.name
        )

    @property
    def mode(self) -> str:
        """``"attributes"`` for attribute-level requests, else ``"table"``."""
        return "attributes" if self.attributes is not None else "table"


# --------------------------------------------------------------------------- #
# response
# --------------------------------------------------------------------------- #


@dataclass
class TableRanking:
    """One ranked source table of a table-level response.

    ``evidence_distances`` (the Equation 1 vector) and ``matches`` (the
    winning attribute alignments with their Equation 2 weights) are only
    populated when the request asked for ``explain``.
    """

    table_name: str
    distance: float
    evidence_distances: Optional[Dict[EvidenceType, float]] = None
    matches: Optional[List[AttributeMatch]] = None

    def covered_target_attributes(self) -> set:
        """Target attributes aligned with this table (explain mode only)."""
        if not self.matches:
            return set()
        return {match.target_attribute for match in self.matches}


@dataclass
class AttributeRanking:
    """One ranked lake attribute of an attribute-level response."""

    source: AttributeRef
    distance: float
    distances: Optional[Dict[EvidenceType, float]] = None


@dataclass
class JoinPathsBlock:
    """The SA-join extension of a table-level response (``joins=True``).

    ``paths`` are the Algorithm 3 join paths from the top-k tables,
    ``joined_tables`` the (sorted) tables reached beyond the starting
    tables, and ``truncated`` records whether the ``max_join_paths`` cap
    stopped the enumeration before every start table was fully explored.
    """

    paths: List[JoinPath]
    joined_tables: List[str]
    truncated: bool = False


@dataclass
class QueryResponse:
    """The machine-readable answer to one :class:`QueryRequest`.

    ``results`` holds the full table ranking (ascending combined distance —
    slicing with :meth:`top` answers the requested k, keeping sweeps over k
    cheap); ``attribute_results`` holds per-attribute rankings for
    attribute-level requests.  Exactly one of the two is populated.
    ``join_paths`` carries the SA-join extension when the request asked for
    ``joins`` (table-level only).
    """

    target_name: str
    target_arity: int
    k: int
    mode: str
    engine: str
    explain: bool
    evidence: Optional[Tuple[EvidenceType, ...]]
    ranking_weights: Dict[EvidenceType, float]
    results: Optional[List[TableRanking]] = None
    attribute_results: Optional[Dict[str, List[AttributeRanking]]] = None
    join_paths: Optional[JoinPathsBlock] = None

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    def top(self, k: Optional[int] = None) -> List[TableRanking]:
        """The ``k`` most related tables (default: the requested k)."""
        k = self.k if k is None else k
        if k < 0:
            raise ValueError("k must be non-negative")
        return (self.results or [])[:k]

    def table_names(self, k: Optional[int] = None) -> List[str]:
        """Names of the top-k tables."""
        return [ranking.table_name for ranking in self.top(k)]

    def result_for(self, table_name: str) -> Optional[TableRanking]:
        """The ranking entry of a specific table, when present."""
        for ranking in self.results or []:
            if ranking.table_name == table_name:
                return ranking
        return None

    def truncated(
        self,
        k: Optional[int] = None,
        max_join_paths: Optional[int] = TRUNCATED_JOIN_PATH_CAP,
    ) -> "QueryResponse":
        """A copy keeping only the top-``k`` rankings (default: requested k).

        The response itself carries the full candidate ranking so k sweeps
        stay cheap; wire emitters that only want the answer (the CLI's
        ``--json`` mode, the ``repro serve`` endpoint) slice it here before
        serialising.  The ``join_paths`` block is bounded too —
        ``max_join_paths`` caps the emitted paths (default
        :data:`TRUNCATED_JOIN_PATH_CAP`, the rendered report's cap; ``None``
        keeps every path) and the block's ``truncated`` flag is set whenever
        the cap drops any, so wire readers can tell a complete enumeration
        from a bounded one.  ``joined_tables`` keeps summarising the full
        search.
        """
        k = self.k if k is None else k
        join_paths = self.join_paths
        if (
            join_paths is not None
            and max_join_paths is not None
            and len(join_paths.paths) > max_join_paths
        ):
            join_paths = JoinPathsBlock(
                paths=list(join_paths.paths[:max_join_paths]),
                joined_tables=list(join_paths.joined_tables),
                truncated=True,
            )
        return dataclasses.replace(
            self,
            results=None if self.results is None else self.top(k),
            attribute_results=(
                None
                if self.attribute_results is None
                else {
                    name: entries[:k]
                    for name, entries in self.attribute_results.items()
                }
            ),
            join_paths=join_paths,
        )

    # ------------------------------------------------------------------ #
    # wire format
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary carrying everything the response holds."""
        return {
            "format": WIRE_FORMAT,
            "target": {"name": self.target_name, "arity": self.target_arity},
            "k": self.k,
            "mode": self.mode,
            "engine": self.engine,
            "explain": self.explain,
            "evidence": (
                None
                if self.evidence is None
                else [evidence.value for evidence in self.evidence]
            ),
            "ranking_weights": {
                evidence.value: float(weight)
                for evidence, weight in self.ranking_weights.items()
            },
            "results": (
                None
                if self.results is None
                else [_table_ranking_to_dict(ranking) for ranking in self.results]
            ),
            "attribute_results": (
                None
                if self.attribute_results is None
                else {
                    name: [_attribute_ranking_to_dict(entry) for entry in entries]
                    for name, entries in self.attribute_results.items()
                }
            ),
            "join_paths": (
                None if self.join_paths is None else _join_paths_to_dict(self.join_paths)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QueryResponse":
        """Reconstruct a response serialized by :meth:`to_dict` (lossless)."""
        if payload.get("format") != WIRE_FORMAT:
            raise ValueError(
                f"payload format {payload.get('format')!r} is not {WIRE_FORMAT!r}"
            )
        target = payload["target"]
        evidence = payload.get("evidence")
        results = payload.get("results")
        attribute_results = payload.get("attribute_results")
        join_paths = payload.get("join_paths")
        return cls(
            target_name=target["name"],
            target_arity=int(target["arity"]),
            k=int(payload["k"]),
            mode=payload["mode"],
            engine=payload["engine"],
            explain=bool(payload["explain"]),
            evidence=(
                None
                if evidence is None
                else tuple(EvidenceType(code) for code in evidence)
            ),
            ranking_weights={
                EvidenceType(code): float(weight)
                for code, weight in payload["ranking_weights"].items()
            },
            results=(
                None
                if results is None
                else [_table_ranking_from_dict(entry) for entry in results]
            ),
            attribute_results=(
                None
                if attribute_results is None
                else {
                    name: [_attribute_ranking_from_dict(entry) for entry in entries]
                    for name, entries in attribute_results.items()
                }
            ),
            join_paths=(
                None if join_paths is None else _join_paths_from_dict(join_paths)
            ),
        )


def _distances_to_dict(distances: Mapping[EvidenceType, float]) -> Dict[str, float]:
    return {evidence.value: float(value) for evidence, value in distances.items()}


def _distances_from_dict(payload: Mapping[str, float]) -> Dict[EvidenceType, float]:
    return {EvidenceType(code): float(value) for code, value in payload.items()}


def _match_to_dict(match: AttributeMatch) -> Dict[str, object]:
    return {
        "target_attribute": match.target_attribute,
        "source": {"table": match.source.table, "column": match.source.column},
        "distances": _distances_to_dict(match.distances),
        "weights": _distances_to_dict(match.weights),
    }


def _match_from_dict(payload: Mapping[str, object]) -> AttributeMatch:
    source = payload["source"]
    return AttributeMatch(
        target_attribute=payload["target_attribute"],
        source=AttributeRef(source["table"], source["column"]),
        distances=_distances_from_dict(payload["distances"]),
        weights=_distances_from_dict(payload["weights"]),
    )


def _table_ranking_to_dict(ranking: TableRanking) -> Dict[str, object]:
    return {
        "table": ranking.table_name,
        "distance": float(ranking.distance),
        "evidence_distances": (
            None
            if ranking.evidence_distances is None
            else _distances_to_dict(ranking.evidence_distances)
        ),
        "matches": (
            None
            if ranking.matches is None
            else [_match_to_dict(match) for match in ranking.matches]
        ),
    }


def _table_ranking_from_dict(payload: Mapping[str, object]) -> TableRanking:
    evidence_distances = payload.get("evidence_distances")
    matches = payload.get("matches")
    return TableRanking(
        table_name=payload["table"],
        distance=float(payload["distance"]),
        evidence_distances=(
            None if evidence_distances is None else _distances_from_dict(evidence_distances)
        ),
        matches=(
            None if matches is None else [_match_from_dict(match) for match in matches]
        ),
    )


def _attribute_ranking_to_dict(entry: AttributeRanking) -> Dict[str, object]:
    return {
        "source": {"table": entry.source.table, "column": entry.source.column},
        "distance": float(entry.distance),
        "distances": (
            None if entry.distances is None else _distances_to_dict(entry.distances)
        ),
    }


def _attribute_ranking_from_dict(payload: Mapping[str, object]) -> AttributeRanking:
    source = payload["source"]
    distances = payload.get("distances")
    return AttributeRanking(
        source=AttributeRef(source["table"], source["column"]),
        distance=float(payload["distance"]),
        distances=None if distances is None else _distances_from_dict(distances),
    )


def _join_edge_to_dict(edge: JoinEdge) -> Dict[str, object]:
    return {
        "left": {"table": edge.left.table, "column": edge.left.column},
        "right": {"table": edge.right.table, "column": edge.right.column},
        "overlap": float(edge.overlap),
    }


def _join_edge_from_dict(payload: Mapping[str, object]) -> JoinEdge:
    left, right = payload["left"], payload["right"]
    return JoinEdge(
        left=AttributeRef(left["table"], left["column"]),
        right=AttributeRef(right["table"], right["column"]),
        overlap=float(payload["overlap"]),
    )


def _join_paths_to_dict(block: JoinPathsBlock) -> Dict[str, object]:
    return {
        "paths": [
            {
                "tables": list(path.tables),
                "edges": [_join_edge_to_dict(edge) for edge in path.edges],
            }
            for path in block.paths
        ],
        "joined_tables": list(block.joined_tables),
        "truncated": bool(block.truncated),
    }


def _join_paths_from_dict(payload: Mapping[str, object]) -> JoinPathsBlock:
    return JoinPathsBlock(
        paths=[
            JoinPath(
                tables=list(entry["tables"]),
                edges=[_join_edge_from_dict(edge) for edge in entry["edges"]],
            )
            for entry in payload["paths"]
        ],
        joined_tables=list(payload["joined_tables"]),
        truncated=bool(payload["truncated"]),
    )


# --------------------------------------------------------------------------- #
# request wire format
# --------------------------------------------------------------------------- #


def _table_to_wire(table: Table) -> Dict[str, object]:
    """A JSON-safe description of a raw table target (name + columns)."""
    return {
        "name": table.name,
        "columns": [
            {"name": column.name, "values": list(column.values)}
            for column in table.columns
        ],
    }


def _table_from_wire(payload: Mapping[str, object]) -> Table:
    """Rebuild a table target from its wire description."""
    from repro.tables.column import Column

    if not isinstance(payload, Mapping):
        raise ValueError("target must be an object with 'name' and 'columns'")
    name = payload.get("name")
    columns = payload.get("columns")
    if not isinstance(name, str) or not isinstance(columns, list):
        raise ValueError("target must carry a string 'name' and a 'columns' list")
    built = []
    for entry in columns:
        if (
            not isinstance(entry, Mapping)
            or not isinstance(entry.get("name"), str)
            or not isinstance(entry.get("values"), list)
        ):
            raise ValueError(
                "each target column must be an object with a string 'name' "
                "and a 'values' list"
            )
        built.append(Column(entry["name"], list(entry["values"])))
    return Table(name, built)


#: Request fields carried on the wire besides the target; each is passed to
#: the :class:`QueryRequest` constructor verbatim, so its validation (and
#: error messages) applies to wire payloads exactly as to in-process calls.
_REQUEST_WIRE_FIELDS = (
    "k",
    "evidence",
    "attributes",
    "weights",
    "exclude_self",
    "explain",
    "joins",
    "workers",
    "engine",
    "backend",
)


def query_request_to_wire(request: QueryRequest) -> Dict[str, object]:
    """Serialise a request for the ``repro serve`` ``POST /query`` body.

    Only raw-table targets can travel — a :class:`TableProfile` is
    process-local state with no wire representation.
    """
    if isinstance(request.target, TableProfile):
        raise ValueError("pre-profiled targets cannot be serialised to the wire")
    payload: Dict[str, object] = {
        "format": REQUEST_WIRE_FORMAT,
        "target": _table_to_wire(request.target),
        "k": request.k,
        "exclude_self": request.exclude_self,
        "explain": request.explain,
        "joins": request.joins,
        "workers": request.workers,
        "engine": request.engine,
        "backend": request.backend,
    }
    if request.evidence is not None:
        payload["evidence"] = [evidence.value for evidence in request.evidence]
    if request.attributes is not None:
        payload["attributes"] = list(request.attributes)
    if request.weights is not None:
        weights = _coerce_weights(request.weights)
        payload["weights"] = {
            evidence.value: float(value)
            for evidence, value in weights.as_dict().items()
        }
    return payload


def query_request_from_wire(payload: Mapping[str, object]) -> QueryRequest:
    """Build a validated :class:`QueryRequest` from a wire payload.

    The ``format`` marker is optional but, when present, must name
    :data:`REQUEST_WIRE_FORMAT`.  Unknown top-level fields are rejected so a
    misspelt option fails loudly instead of silently running with defaults.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("request payload must be a JSON object")
    marker = payload.get("format")
    if marker is not None and marker != REQUEST_WIRE_FORMAT:
        raise ValueError(
            f"payload format {marker!r} is not {REQUEST_WIRE_FORMAT!r}"
        )
    if "target" not in payload:
        raise ValueError("request payload must carry a 'target'")
    unknown = set(payload) - set(_REQUEST_WIRE_FIELDS) - {"format", "target"}
    if unknown:
        raise ValueError(
            f"unknown request fields: {', '.join(sorted(map(str, unknown)))}"
        )
    options = {
        field_name: payload[field_name]
        for field_name in _REQUEST_WIRE_FIELDS
        if field_name in payload and payload[field_name] is not None
    }
    if "attributes" in options:
        attributes = options["attributes"]
        if not isinstance(attributes, list):
            raise ValueError("attributes must be a list of column names")
        options["attributes"] = tuple(attributes)
    return QueryRequest(target=_table_from_wire(payload["target"]), **options)


# --------------------------------------------------------------------------- #
# the execution planner
# --------------------------------------------------------------------------- #


@dataclass
class QueryExecution:
    """One planned-and-executed request: the legacy value plus the response.

    ``legacy`` is what the corresponding deprecated entry point used to
    return (a :class:`~repro.core.discovery.QueryResult` for table-level
    requests, an ``{attribute: [AttributeSearchResult]}`` mapping for
    attribute-level ones) — the shims return it unchanged, which is what
    keeps their behaviour identical.  The :attr:`response` is materialised
    lazily on first access, so shim callers that only consume ``legacy``
    never pay for per-candidate protocol objects.
    """

    request: QueryRequest
    legacy: object
    weights_used: EvidenceWeights
    _response: Optional[QueryResponse] = field(default=None, repr=False)

    @property
    def response(self) -> QueryResponse:
        """The protocol response for this execution (built once, cached)."""
        if self._response is None:
            if self.request.attributes is not None:
                self._response = _attribute_response(
                    self.request, self.legacy, self.weights_used
                )
            elif isinstance(self.legacy, JoinAugmentedResult):
                response = _table_response(
                    self.request, self.legacy.base, self.weights_used
                )
                response.join_paths = JoinPathsBlock(
                    paths=list(self.legacy.join_paths),
                    joined_tables=sorted(self.legacy.joined_tables),
                    truncated=self.legacy.truncated,
                )
                self._response = response
            else:
                self._response = _table_response(
                    self.request, self.legacy, self.weights_used
                )
        return self._response


def _ranking_weights(engine: D3L, request: QueryRequest) -> EvidenceWeights:
    """The Equation 3 weights a request resolves to (mirrors the engines).

    Explicit overrides win; otherwise an evidence subset implies binary
    weights over that subset (Experiment 1 mode) and the engine's trained or
    default weights apply to full-evidence requests.
    """
    if request.weights is not None:
        return request.weights
    if request.evidence is None or request.attributes is not None:
        return engine.weights
    return EvidenceWeights(
        {
            evidence: (1.0 if evidence in request.evidence else 0.0)
            for evidence in EvidenceType.all()
        }
    )


def execute(
    engine: D3L,
    request: QueryRequest,
    profile: Optional[TableProfile] = None,
    signature_maps: Optional[Dict[str, Dict[EvidenceType, object]]] = None,
) -> QueryExecution:
    """Plan and run one request against ``engine``.

    This is the single funnel underneath every entry point: the deprecated
    ``D3L`` methods build a request and return the ``legacy`` value, while
    :meth:`DiscoverySession.submit` returns the ``response`` — both from the
    same execution.  ``profile``/``signature_maps`` let a session substitute
    its memoized target state for table-level requests; both are
    deterministic functions of the target, so answers are unchanged.

    Runs on the read side of the engine's index lock: any number of
    requests execute concurrently, while lake mutations (the write side)
    wait for in-flight requests to drain — the thread-serving tier answers
    off the live indexes from many handler threads at once.
    """
    with engine.index_lock.read():
        return _execute_locked(engine, request, profile, signature_maps)


def _execute_locked(
    engine: D3L,
    request: QueryRequest,
    profile: Optional[TableProfile] = None,
    signature_maps: Optional[Dict[str, Dict[EvidenceType, object]]] = None,
) -> QueryExecution:
    weights_used = _ranking_weights(engine, request)
    if request.attributes is not None:
        if request.engine == "sequential":
            legacy = {
                name: engine._execute_related_attributes(
                    request.target,
                    name,
                    k=request.k,
                    exclude_self=request.exclude_self,
                    weights=request.weights,
                )
                for name in request.attributes
            }
        else:
            legacy = engine._execute_related_attributes_bulk(
                request.target,
                list(request.attributes),
                k=request.k,
                exclude_self=request.exclude_self,
                weights=request.weights,
            )
        return QueryExecution(request=request, legacy=legacy, weights_used=weights_used)

    target = profile if profile is not None else request.target
    if request.engine == "sequential":
        legacy = engine._execute_query(
            target,
            request.k,
            evidence_types=request.evidence,
            exclude_self=request.exclude_self,
            weights=request.weights,
        )
    else:
        legacy = engine._execute_query_batch(
            target,
            request.k,
            evidence_types=request.evidence,
            exclude_self=request.exclude_self,
            weights=request.weights,
            workers=request.workers,
            signature_maps=signature_maps,
            backend=request.backend,
        )
    if request.joins:
        # D3L+J (section IV): walk the engine's cached SA-join graph from
        # the ranked answer.  The graph is version-invalidated against the
        # indexes, so repeated joins requests through one engine/session pay
        # for construction once per lake snapshot.
        legacy = engine.augment_with_joins(legacy, request.k)
    return QueryExecution(request=request, legacy=legacy, weights_used=weights_used)


def _float_distances(
    distances: Mapping[EvidenceType, float],
) -> Dict[EvidenceType, float]:
    """A plain-float copy of a per-evidence mapping (drops numpy scalars)."""
    return {evidence: float(value) for evidence, value in distances.items()}


def _ranking_weights_dict(weights_used: EvidenceWeights) -> Dict[EvidenceType, float]:
    """The Equation 3 weights a response echoes, over all five types."""
    return {
        evidence: float(weights_used.get(evidence, 0.0))
        for evidence in EvidenceType.all()
    }


def _table_response(
    request: QueryRequest, result: QueryResult, weights_used: EvidenceWeights
) -> QueryResponse:
    rankings = []
    for entry in result.results:
        if request.explain:
            rankings.append(
                TableRanking(
                    table_name=entry.table_name,
                    distance=float(entry.distance),
                    evidence_distances=_float_distances(entry.evidence_distances),
                    matches=list(entry.matches),
                )
            )
        else:
            rankings.append(
                TableRanking(table_name=entry.table_name, distance=float(entry.distance))
            )
    return QueryResponse(
        target_name=result.target_name,
        target_arity=result.target_arity,
        k=request.k,
        mode="table",
        engine=request.engine,
        explain=request.explain,
        evidence=None if request.evidence is None else tuple(request.evidence),
        ranking_weights=_ranking_weights_dict(weights_used),
        results=rankings,
    )


def _attribute_response(
    request: QueryRequest,
    legacy: Dict[str, List[AttributeSearchResult]],
    weights_used: EvidenceWeights,
) -> QueryResponse:
    attribute_results = {
        name: [
            AttributeRanking(
                source=entry.ref,
                distance=float(entry.distance),
                distances=(
                    _float_distances(entry.distances) if request.explain else None
                ),
            )
            for entry in entries
        ]
        for name, entries in legacy.items()
    }
    target = request.target
    return QueryResponse(
        target_name=target.name,
        target_arity=target.arity,
        k=request.k,
        mode="attributes",
        engine=request.engine,
        explain=request.explain,
        evidence=None,
        ranking_weights=_ranking_weights_dict(weights_used),
        attribute_results=attribute_results,
    )


# --------------------------------------------------------------------------- #
# the serving façade
# --------------------------------------------------------------------------- #


class DiscoverySession:
    """A serving-tier façade over one indexed :class:`~repro.core.discovery.D3L`.

    The session memoizes the expensive per-target state — the Algorithm 1
    :class:`TableProfile` *and* the per-evidence query signatures — in an LRU
    keyed by target content, so repeated queries against the same target
    (k sweeps, evidence ablations, dashboard refreshes) skip straight to
    candidate collection.  When the underlying lake mutates, only the
    entries whose target shares a name with a mutated table are evicted
    (resolved through the indexes' mutation journal); the cache is dropped
    wholesale only when the mutation set is no longer reconstructible or the
    engine's indexes were rebound to a different object.

    Typical usage::

        engine = load_engine("engine.pkl")
        session = DiscoverySession(engine)
        response = session.submit(QueryRequest(target=table, k=10, explain=True))
        payload = response.to_dict()          # JSON-safe wire format
    """

    def __init__(self, engine: D3L, profile_cache_size: int = 64) -> None:
        require_positive("profile_cache_size", profile_cache_size)
        self.engine = engine
        self.profile_cache_size = profile_cache_size
        self._cache: "OrderedDict[object, Tuple[str, TableProfile, Dict]]" = OrderedDict()
        self._cache_version: Optional[int] = None
        self._cache_indexes: Optional[object] = None
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # submitting requests
    # ------------------------------------------------------------------ #
    def submit(self, request: QueryRequest) -> QueryResponse:
        """Execute one request and return its response.

        Table-level requests resolve the target through the profile cache;
        attribute-level requests re-profile the named columns (their legacy
        path profiles per column subset, which the cache cannot reuse).

        The whole submission — cache versioning, target resolution (which
        reads the live signature matrices), and execution — runs on the
        read side of the engine's index lock, so a concurrent lake mutation
        can never hand this session half-swapped index state.
        """
        with self.engine.index_lock.read():
            self._check_version()
            if request.attributes is not None:
                return _execute_locked(self.engine, request).response
            profile, signature_maps = self._resolve_target(request.target)
            return _execute_locked(
                self.engine, request, profile=profile, signature_maps=signature_maps
            ).response

    def query(self, target: QueryTarget, k: int = 10, **options) -> QueryResponse:
        """Convenience: build and submit a table-level request."""
        return self.submit(QueryRequest(target=target, k=k, **options))

    def related_attributes(
        self,
        target: Table,
        attributes: Optional[Sequence[str]] = None,
        k: int = 10,
        **options,
    ) -> QueryResponse:
        """Convenience: build and submit an attribute-level request.

        ``attributes=None`` asks about every column of the target, the way
        the legacy bulk entry point did.
        """
        names = (
            tuple(attributes)
            if attributes is not None
            else tuple(column.name for column in target.columns)
        )
        return self.submit(QueryRequest(target=target, k=k, attributes=names, **options))

    # ------------------------------------------------------------------ #
    # cache management
    # ------------------------------------------------------------------ #
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and current occupancy of the profile cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "capacity": self.profile_cache_size,
        }

    def clear_cache(self) -> None:
        """Drop every memoized target profile."""
        self._cache.clear()

    def close(self) -> None:
        """Release session state, worker pools, and shared-memory snapshots.

        Clears the profile cache and closes the engine's fan-out executors
        (reaping worker processes and unlinking ``/dev/shm`` segments).  The
        session and engine stay usable — pools and snapshots are re-created
        lazily on the next fanned-out request.
        """
        self.clear_cache()
        self.engine.close()

    def __enter__(self) -> "DiscoverySession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Release pools and segments on scope exit (exceptions included)."""
        self.close()

    def save(self, path) -> "object":
        """Persist the session (engine + session settings) to ``path``."""
        from repro.core.persistence import save_session

        return save_session(self, path)

    def _check_version(self) -> None:
        """Invalidate stale cache entries when the underlying lake mutated.

        Both the mutation counter and the indexes' identity are checked —
        an engine whose ``indexes`` was rebound (e.g. to a restored object,
        whose counter restarts) must not be served signatures derived from
        the old object, so a rebind still clears everything.  A version bump
        on the *same* indexes object resolves the mutated table names
        through the mutation journal and evicts only the entries caching a
        target of that name; when the journal cannot cover the gap the whole
        cache is dropped, restoring the old wholesale behaviour.
        """
        indexes = self.engine.indexes
        if indexes is self._cache_indexes and indexes.version == self._cache_version:
            return
        mutated = (
            indexes.mutated_tables_since(self._cache_version)
            if indexes is self._cache_indexes and self._cache_version is not None
            else None
        )
        if mutated is None:
            self._cache.clear()
        elif mutated:
            for key in [
                key
                for key, (table_name, _, _) in self._cache.items()
                if table_name in mutated
            ]:
                del self._cache[key]
        self._cache_indexes = indexes
        self._cache_version = indexes.version

    def _resolve_target(self, target: QueryTarget) -> Tuple[TableProfile, Dict]:
        key = self._fingerprint(target)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._hits += 1
            return cached[1], cached[2]
        self._misses += 1
        profile = (
            target
            if isinstance(target, TableProfile)
            else self.engine.indexes.profile_table(target)
        )
        entries = list(profile.attributes.items())
        signature_maps = attribute_signature_maps(
            self.engine.indexes, profile.table_name, entries
        )
        # The table name rides along so _check_version can evict per table.
        self._cache[key] = (profile.table_name, profile, signature_maps)
        while len(self._cache) > self.profile_cache_size:
            self._cache.popitem(last=False)
        return profile, signature_maps

    @staticmethod
    def _fingerprint(target: QueryTarget) -> object:
        """A content key for the profile cache.

        Raw tables are fingerprinted over their name, column names, and
        values — one cheap hashing pass, orders of magnitude cheaper than
        the Algorithm 1 profiling it saves.  Pre-profiled targets are keyed
        by identity: the cache entry itself keeps the profile alive, so the
        id cannot be recycled while the entry exists.
        """
        if isinstance(target, TableProfile):
            return ("profile", id(target))
        digest = hashlib.blake2b(digest_size=16)
        digest.update(target.name.encode("utf-8", "surrogatepass"))
        for column in target.columns:
            digest.update(b"\x00")
            digest.update(column.name.encode("utf-8", "surrogatepass"))
            for value in column.values:
                digest.update(b"\x1f")
                digest.update(repr(value).encode("utf-8", "surrogatepass"))
        return ("table", digest.hexdigest())
