"""Figure 6a / Experiment 4 — time to create the indexes as the lake grows.

The paper grows samples of its Larger Real corpus; here lakes of increasing
table count are generated with the synthetic derivation procedure.  Shapes to
reproduce: indexing time grows with lake size for every system, and Aurum's
advantage at small scale (its profiling step is the lightest) erodes as the
lake grows because its dominant cost is constructing the knowledge graph.

One paper observation does *not* carry over by construction: TUS is the
slowest indexer in the paper because every value token is looked up in the
multi-gigabyte YAGO knowledge base; the offline substitute is an in-memory
dictionary, so that cost largely disappears (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.evaluation.experiments import experiment_indexing_time


def test_figure6a_indexing_time(benchmark, record_rows, bench_config):
    table_counts = [32, 64, 96, 128]
    rows = run_once(
        benchmark,
        experiment_indexing_time,
        table_counts,
        systems=("d3l", "tus", "aurum"),
        config=bench_config,
        base_rows=100,
        seed=6,
    )
    record_rows("figure6a_indexing_time", rows, "Figure 6a: indexing time vs lake size")

    # Indexing time grows with the lake for every system.
    for column in ("d3l_seconds", "tus_seconds", "aurum_seconds"):
        assert rows[-1][column] > rows[0][column] * 0.8
    # Aurum's small-lake advantage erodes as the lake grows (the paper's
    # crossover): its time relative to D3L increases from the smallest to the
    # largest sample.
    first_ratio = rows[0]["aurum_seconds"] / rows[0]["d3l_seconds"]
    last_ratio = rows[-1]["aurum_seconds"] / rows[-1]["d3l_seconds"]
    assert last_ratio > first_ratio
