"""The benchmark bundle: a lake, its ground truth, and shared resources.

A :class:`Benchmark` is what the evaluation harness and the benchmark scripts
consume: the generated :class:`~repro.lake.datalake.DataLake`, its
:class:`~repro.datagen.ground_truth.GroundTruth`, the vocabulary it was built
from, and helpers for choosing query targets, building word-embedding
training corpora, and building the synthetic knowledge base used by the TUS
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.datagen.ground_truth import GroundTruth
from repro.datagen.vocab import Vocabulary, default_vocabulary
from repro.lake.datalake import DataLake
from repro.tables.table import Table
from repro.text.tokenizer import tokenize


@dataclass
class Benchmark:
    """A generated corpus with everything the experiments need."""

    name: str
    lake: DataLake
    ground_truth: GroundTruth
    vocabulary: Vocabulary = field(default_factory=default_vocabulary)

    # ------------------------------------------------------------------ #
    # query targets
    # ------------------------------------------------------------------ #
    def pick_targets(
        self,
        count: int,
        seed: int = 0,
        min_related: int = 1,
    ) -> List[Table]:
        """Randomly pick query targets from the lake.

        Mirrors the paper's protocol of averaging over randomly selected
        targets drawn from the repository; only tables with at least
        ``min_related`` related tables in the ground truth qualify, so every
        target has a non-trivial answer.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        candidates = [
            table
            for table in self.lake.tables
            if self.ground_truth.answer_size(table.name) >= min_related
        ]
        if not candidates:
            return []
        rng = np.random.default_rng(seed)
        if count >= len(candidates):
            return candidates
        chosen = rng.choice(len(candidates), size=count, replace=False)
        return [candidates[i] for i in sorted(chosen)]

    def average_answer_size(self) -> float:
        """Mean ground-truth answer size across the lake (reported per corpus)."""
        return self.ground_truth.average_answer_size()

    # ------------------------------------------------------------------ #
    # labelled data for the learned components
    # ------------------------------------------------------------------ #
    def labelled_subject_tables(self) -> List[Tuple[Table, str]]:
        """(table, subject attribute) pairs for the subject-attribute classifier."""
        labelled = []
        for table_name, subject in self.ground_truth.labelled_subject_attributes():
            if table_name in self.lake and subject in self.lake.table(table_name):
                labelled.append((self.lake.table(table_name), subject))
        return labelled

    def describe(self) -> dict:
        """Corpus statistics (Figure 2 style) plus the average answer size."""
        stats = self.lake.describe()
        stats["average_answer_size"] = self.average_answer_size()
        return stats


def build_embedding_corpus(
    vocabulary: Optional[Vocabulary] = None,
    sentences_per_domain: int = 60,
    values_per_sentence: int = 4,
    seed: int = 3,
) -> List[List[str]]:
    """Sentences for training the co-occurrence embedding model.

    Each sentence mixes tokens from values of domains that share an ontology
    class, together with the domains' attribute-name aliases, so that
    semantically related tokens (``street`` / ``road`` / ``avenue``,
    ``practice`` / ``surgery`` / ``clinic``) co-occur — the distributional
    property the paper gets from a pre-trained fastText model.
    """
    vocabulary = vocabulary or default_vocabulary()
    rng = np.random.default_rng(seed)
    by_class: dict = {}
    for domain in vocabulary.domains:
        by_class.setdefault(domain.ontology_class, []).append(domain)

    sentences: List[List[str]] = []
    for ontology_class, domains in by_class.items():
        textual = [domain for domain in domains if not domain.numeric]
        if not textual:
            continue
        for _ in range(sentences_per_domain):
            sentence: List[str] = [ontology_class]
            for _ in range(values_per_sentence):
                domain = textual[int(rng.integers(0, len(textual)))]
                alias = domain.aliases[int(rng.integers(0, len(domain.aliases)))]
                sentence.extend(tokenize(alias))
                sentence.extend(tokenize(domain.generate(rng)))
            sentences.append(sentence)
    return sentences


def build_knowledge_base(
    vocabulary: Optional[Vocabulary] = None,
    samples_per_domain: int = 400,
    seed: int = 5,
):
    """Build the synthetic knowledge base used by the TUS baseline.

    Samples values from every textual domain and registers their tokens under
    the domain's ontology class (and the domain name itself as a finer
    class), mimicking how the TUS authors map value tokens to YAGO classes.
    Imported lazily to keep :mod:`repro.datagen` free of a hard dependency on
    the baselines package.
    """
    from repro.baselines.knowledge_base import KnowledgeBase

    vocabulary = vocabulary or default_vocabulary()
    rng = np.random.default_rng(seed)
    knowledge_base = KnowledgeBase()
    for domain in vocabulary.textual_domains():
        for _ in range(samples_per_domain):
            value = domain.generate(rng)
            knowledge_base.add_entity(
                value, classes=(domain.ontology_class, domain.name)
            )
    return knowledge_base
