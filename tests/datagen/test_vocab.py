"""Tests for the semantic-domain vocabulary."""

import numpy as np
import pytest

from repro.datagen.vocab import SemanticDomain, Vocabulary, default_vocabulary
from repro.tables.types import coerce_numeric


@pytest.fixture(scope="module")
def vocabulary():
    return default_vocabulary()


class TestDefaultVocabulary:
    def test_has_many_domains(self, vocabulary):
        assert len(vocabulary) >= 30

    def test_domain_names_unique(self, vocabulary):
        assert len(set(vocabulary.names)) == len(vocabulary.names)

    def test_contains_core_domains(self, vocabulary):
        for name in ["practice_name", "city", "postcode", "payment_amount", "opening_hours"]:
            assert name in vocabulary

    def test_missing_domain_raises(self, vocabulary):
        with pytest.raises(KeyError):
            vocabulary.domain("nonexistent_domain")

    def test_textual_and_numeric_partition(self, vocabulary):
        textual = {domain.name for domain in vocabulary.textual_domains()}
        numeric = {domain.name for domain in vocabulary.numeric_domains()}
        assert textual.isdisjoint(numeric)
        assert textual | numeric == set(vocabulary.names)

    def test_every_domain_has_aliases(self, vocabulary):
        for domain in vocabulary.domains:
            assert domain.aliases, domain.name

    def test_every_domain_has_ontology_class(self, vocabulary):
        for domain in vocabulary.domains:
            assert domain.ontology_class

    def test_duplicate_domains_rejected(self):
        domain = SemanticDomain("d", ["D"], "c", lambda rng: "x")
        with pytest.raises(ValueError):
            Vocabulary([domain, domain])


class TestValueGeneration:
    def test_generators_are_deterministic_given_seed(self, vocabulary):
        for domain in vocabulary.domains:
            first = domain.sample(np.random.default_rng(5), 5)
            second = domain.sample(np.random.default_rng(5), 5)
            assert first == second, domain.name

    def test_numeric_domains_produce_numbers(self, vocabulary):
        rng = np.random.default_rng(0)
        for domain in vocabulary.numeric_domains():
            for value in domain.sample(rng, 10):
                assert coerce_numeric(value) is not None, (domain.name, value)

    def test_textual_domains_produce_non_empty_strings(self, vocabulary):
        rng = np.random.default_rng(1)
        for domain in vocabulary.textual_domains():
            for value in domain.sample(rng, 5):
                assert isinstance(value, str) and value.strip(), domain.name

    def test_postcode_format(self, vocabulary):
        rng = np.random.default_rng(2)
        for value in vocabulary.domain("postcode").sample(rng, 20):
            assert " " in value
            area, unit = value.split(" ", 1)
            assert any(char.isdigit() for char in area)
            assert len(unit) == 3

    def test_opening_hours_format(self, vocabulary):
        rng = np.random.default_rng(3)
        for value in vocabulary.domain("opening_hours").sample(rng, 10):
            assert "-" in value and ":" in value

    def test_alias_for_returns_known_alias(self, vocabulary):
        rng = np.random.default_rng(4)
        alias = vocabulary.alias_for("city", rng)
        assert alias in vocabulary.domain("city").aliases

    def test_rating_bounded(self, vocabulary):
        rng = np.random.default_rng(5)
        for value in vocabulary.domain("rating").sample(rng, 30):
            assert 1 <= float(value) <= 5
