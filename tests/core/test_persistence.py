"""Tests for engine/index persistence."""

import pickle

import pytest

from repro.core.discovery import D3L
from repro.core.indexes import D3LIndexes
from repro.core.persistence import (
    PersistenceError,
    load_engine,
    load_indexes,
    save_engine,
    save_indexes,
)


class TestEngineRoundTrip:
    def test_save_and_load_engine(self, figure1_engine, figure1_tables, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        assert path.exists()
        loaded = load_engine(path)
        assert isinstance(loaded, D3L)
        assert set(loaded.indexes.table_names) == set(figure1_engine.indexes.table_names)

    def test_loaded_engine_answers_queries_identically(
        self, figure1_engine, figure1_tables, tmp_path
    ):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        target = figure1_tables["target"]
        original = figure1_engine.query(target, k=3)
        restored = loaded.query(target, k=3)
        assert original.table_names(3) == restored.table_names(3)
        assert [round(r.distance, 9) for r in original.results] == [
            round(r.distance, 9) for r in restored.results
        ]

    def test_save_creates_parent_directories(self, figure1_engine, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "nested" / "deeper" / "engine.pkl")
        assert path.exists()

    def test_weights_survive_round_trip(self, figure1_engine, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        assert loaded.weights.values == figure1_engine.weights.values


class TestIndexRoundTrip:
    def test_save_and_load_indexes(self, figure1_engine, tmp_path):
        path = save_indexes(figure1_engine.indexes, tmp_path / "indexes.pkl")
        loaded = load_indexes(path)
        assert isinstance(loaded, D3LIndexes)
        assert loaded.attribute_count == figure1_engine.indexes.attribute_count

    def test_kind_mismatch_rejected(self, figure1_engine, tmp_path):
        engine_path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        with pytest.raises(PersistenceError):
            load_indexes(engine_path)
        indexes_path = save_indexes(figure1_engine.indexes, tmp_path / "indexes.pkl")
        with pytest.raises(PersistenceError):
            load_engine(indexes_path)


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_engine(tmp_path / "missing.pkl")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_engine(path)

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        with path.open("wb") as handle:
            pickle.dump(["something", "else"], handle)
        with pytest.raises(PersistenceError):
            load_engine(path)

    def test_version_mismatch(self, figure1_engine, tmp_path):
        path = tmp_path / "old.pkl"
        with path.open("wb") as handle:
            pickle.dump(
                {"kind": "d3l_engine", "version": -1, "engine": figure1_engine}, handle
            )
        with pytest.raises(PersistenceError):
            load_engine(path)
