"""Saving and loading indexed engines (versioned multi-section format, v3).

Index construction is the expensive part of dataset discovery (Figure 6a of
the paper); a deployment indexes the lake once and answers many queries.
These helpers persist a fully indexed :class:`~repro.core.discovery.D3L`
engine (or just its :class:`~repro.core.indexes.D3LIndexes`) to disk and load
it back, so the indexing cost is paid once per lake snapshot.

Format version 3 no longer pickles the engine object graph.  The payload is
a dictionary of explicit sections:

* ``config`` / ``weights`` / ``embedding_model`` / ``subject_classifier`` —
  the small configuration objects, pickled as-is;
* ``profiles`` / ``table_profiles`` — the attribute and table profiles;
* ``evidence`` — per indexed evidence type, the **raw NumPy buffers** of the
  index: the signature matrix (rows, degeneracy flags, row-order refs) and
  the forest's per-tree sorted key arrays with their item lists;
* ``join_graph`` (engine payloads, optional) — the SA-join graph of section
  IV as plain node/edge records (table pairs, joined attribute refs, exact
  overlap coefficients), persisted whenever the engine had built it for the
  current lake snapshot, so a restored engine or serving session answers
  ``joins=True`` requests without re-running graph construction.

Loading reconstructs the signature matrices, signature registries, and
forests directly from those buffers — no signature is recomputed, no tree is
re-sorted — so a load costs array reshapes plus dictionary builds rather than
re-derivation.  Older payloads (v2 pickled whole engine objects, whose layout
this version abandons) are rejected with a clear :class:`PersistenceError`
telling the caller to re-index.

Pickle remains the container serialisation: the sections are plain data
(numpy arrays, dataclasses, dictionaries of set representations) produced by
this library itself.  Files should be treated like any other binary cache —
do not load engines from untrusted sources.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Union

import networkx as nx

from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.joins import JoinEdge, SAJoinGraph
from repro.lake.datalake import AttributeRef

PathLike = Union[str, Path]

#: Current on-disk format version; bumped when the persisted layout changes.
#: Version 3: multi-section payloads storing signature matrices and forest
#: key arrays as raw NumPy buffers (loads skip all re-derivation).
#: Version 2 (whole-engine pickles) and older are rejected.
FORMAT_VERSION = 3


class PersistenceError(RuntimeError):
    """Raised when a persisted engine cannot be loaded."""


def _write(payload: dict, path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def _read(path: PathLike, expected_kind: str) -> dict:
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no persisted engine at {path}")
    with path.open("rb") as handle:
        try:
            payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError) as error:
            raise PersistenceError(f"cannot unpickle {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("kind") != expected_kind:
        raise PersistenceError(f"{path} does not contain a persisted {expected_kind}")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} uses persisted format version {version}, expected {FORMAT_VERSION}; "
            "versions before 3 pickled whole engine objects and cannot be migrated — "
            "re-index the lake and save it again"
        )
    if "sections" not in payload:
        raise PersistenceError(f"{path} is missing the v{FORMAT_VERSION} payload sections")
    return payload


# --------------------------------------------------------------------------- #
# section (de)construction
# --------------------------------------------------------------------------- #


def _indexes_sections(indexes: D3LIndexes, copy: bool = True) -> Dict[str, object]:
    """Explicit sections of one ``D3LIndexes``, with raw-array index state.

    ``copy=False`` exposes the live arrays as trimmed views instead of
    copies — used by the shared-memory snapshot writer
    (:mod:`repro.core.shared`), which reads each array exactly once while
    streaming it into a segment; such sections must not outlive the next
    mutation of ``indexes``.
    """
    evidence_sections = {}
    for evidence in EvidenceType.indexed():
        refs, matrix, flags = indexes._matrices[evidence].export_state(copy=copy)
        evidence_sections[evidence.value] = {
            "refs": refs,
            "matrix": matrix,
            "flags": flags,
            "forest": indexes._forests[evidence].export_state(copy=copy),
        }
    return {
        "config": indexes.config,
        "embedding_model": indexes.embedding_model,
        "subject_classifier": indexes.subject_classifier,
        "profiles": indexes.profiles,
        "table_profiles": indexes.table_profiles,
        "evidence": evidence_sections,
    }


def _restore_indexes(sections: Dict[str, object]) -> D3LIndexes:
    """Rebuild a ``D3LIndexes`` from its sections without re-deriving anything."""
    indexes = D3LIndexes(
        config=sections["config"],
        embedding_model=sections["embedding_model"],
        subject_classifier=sections["subject_classifier"],
    )
    indexes.profiles = sections["profiles"]
    indexes.table_profiles = sections["table_profiles"]
    for evidence in EvidenceType.indexed():
        section = sections["evidence"][evidence.value]
        refs, matrix, flags = section["refs"], section["matrix"], section["flags"]
        indexes._matrices[evidence].import_state(refs, matrix, flags)
        stored = indexes._signatures[evidence]
        signature_rows = {}
        if evidence is EvidenceType.EMBEDDING:
            for row, ref in enumerate(refs):
                signature = indexes._projection_factory.from_bits(
                    matrix[row], is_zero=bool(flags[row])
                )
                stored[ref] = signature
                signature_rows[ref] = signature.bits
        else:
            for row, ref in enumerate(refs):
                signature = indexes._minhash_factory.from_hashvalues(matrix[row])
                stored[ref] = signature
                signature_rows[ref] = signature.hashvalues
        indexes._forests[evidence].import_state(section["forest"], signature_rows)
    return indexes


def indexes_sections(indexes: D3LIndexes, copy: bool = True) -> Dict[str, object]:
    """Public v3 section writer (see :func:`_indexes_sections`).

    The shared-memory snapshot layer (:mod:`repro.core.shared`) uses this to
    split an index into picklable metadata and the raw NumPy buffers it
    places into a segment; the on-disk format and the in-memory segment
    layout stay two serialisations of the same sections.
    """
    return _indexes_sections(indexes, copy=copy)


def restore_indexes_from_sections(sections: Dict[str, object]) -> D3LIndexes:
    """Public v3 section reader (see :func:`_restore_indexes`).

    Array-valued section entries are adopted view-preserving: sections whose
    matrices, flags, and forest key/rank arrays are views over a shared
    buffer produce an index whose state *is* those views — the zero-copy
    attach path of :class:`repro.core.shared.SharedIndexSnapshot`.
    """
    return _restore_indexes(sections)


def _join_graph_section(graph) -> Dict[str, object]:
    """Plain node/edge records of a built SA-join graph (nodes, edges, overlaps)."""
    edges = []
    for first, second in graph.graph.edges:
        edge = graph.edge(first, second)
        edges.append(
            {
                "first": first,
                "second": second,
                "left": (edge.left.table, edge.left.column),
                "right": (edge.right.table, edge.right.column),
                "overlap": float(edge.overlap),
            }
        )
    return {"nodes": list(graph.graph.nodes), "edges": edges}


def _restore_join_graph(section: Dict[str, object]) -> SAJoinGraph:
    """Rebuild a persisted SA-join graph without re-running construction."""
    graph = nx.Graph()
    graph.add_nodes_from(section["nodes"])
    for entry in section["edges"]:
        graph.add_edge(
            entry["first"],
            entry["second"],
            join=JoinEdge(
                left=AttributeRef(*entry["left"]),
                right=AttributeRef(*entry["right"]),
                overlap=entry["overlap"],
            ),
        )
    return SAJoinGraph(graph)


def _engine_sections(engine: D3L) -> Dict[str, object]:
    join_graph = engine.cached_join_graph
    return {
        "weights": engine.weights,
        "indexes": _indexes_sections(engine.indexes),
        "join_graph": None if join_graph is None else _join_graph_section(join_graph),
        "join_overlap_cache": dict(engine._join_overlap_cache),
    }


def _restore_engine(sections: Dict[str, object]) -> D3L:
    indexes = _restore_indexes(sections["indexes"])
    engine = D3L(
        config=indexes.config,
        embedding_model=indexes.embedding_model,
        weights=sections["weights"],
        subject_classifier=indexes.subject_classifier,
    )
    engine.indexes = indexes
    # Older v3 payloads predate the join-graph section; absent or None just
    # means the graph is rebuilt lazily on first use.
    join_graph = sections.get("join_graph")
    if join_graph is not None:
        engine.restore_join_graph(_restore_join_graph(join_graph))
    # Also an optional late addition: verified join overlaps survive a
    # round-trip so an incremental rebuild after mutation stays cheap.
    engine._join_overlap_cache = dict(sections.get("join_overlap_cache") or {})
    return engine


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #


def save_engine(engine: D3L, path: PathLike) -> Path:
    """Persist a fully indexed engine (indexes, weights, configuration)."""
    payload = {
        "kind": "d3l_engine",
        "version": FORMAT_VERSION,
        "sections": _engine_sections(engine),
    }
    return _write(payload, path)


def load_engine(path: PathLike) -> D3L:
    """Load an engine previously saved with :func:`save_engine`."""
    payload = _read(path, "d3l_engine")
    try:
        return _restore_engine(payload["sections"])
    except (KeyError, TypeError, ValueError) as error:
        raise PersistenceError(f"{path} holds a malformed engine payload: {error}") from error


def save_session(session, path: PathLike) -> Path:
    """Persist a :class:`~repro.core.api.DiscoverySession` (engine + settings).

    The payload reuses the engine's v3 raw-buffer sections and adds a small
    ``session`` section with the serving-tier settings (cache capacity).
    The memoized profiles themselves are deliberately *not* persisted: they
    are a pure function of targets the next deployment may never see again,
    and the cache re-fills on first contact.
    """
    payload = {
        "kind": "d3l_session",
        "version": FORMAT_VERSION,
        "sections": {
            "engine": _engine_sections(session.engine),
            "session": {"profile_cache_size": session.profile_cache_size},
        },
    }
    return _write(payload, path)


def load_session(path: PathLike):
    """Load a serving session previously saved with :func:`save_session`."""
    from repro.core.api import DiscoverySession

    payload = _read(path, "d3l_session")
    try:
        sections = payload["sections"]
        engine = _restore_engine(sections["engine"])
        settings = sections["session"]
        return DiscoverySession(
            engine, profile_cache_size=int(settings["profile_cache_size"])
        )
    except (KeyError, TypeError, ValueError) as error:
        raise PersistenceError(f"{path} holds a malformed session payload: {error}") from error


def save_indexes(indexes: D3LIndexes, path: PathLike) -> Path:
    """Persist a set of indexes without the surrounding engine."""
    payload = {
        "kind": "d3l_indexes",
        "version": FORMAT_VERSION,
        "sections": _indexes_sections(indexes),
    }
    return _write(payload, path)


def load_indexes(path: PathLike) -> D3LIndexes:
    """Load indexes previously saved with :func:`save_indexes`."""
    payload = _read(path, "d3l_indexes")
    try:
        return _restore_indexes(payload["sections"])
    except (KeyError, TypeError, ValueError) as error:
        raise PersistenceError(f"{path} holds a malformed indexes payload: {error}") from error
