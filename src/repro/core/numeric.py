"""The numeric special case: D-relatedness and Algorithm 2.

Numeric attributes carry no useful token or embedding evidence, and no LSH
scheme applies to the features extractable from raw numbers, so the paper
grounds their relatedness in the Kolmogorov–Smirnov statistic over their
extents — but only when cheaper, already-indexed evidence suggests the two
attributes (or their tables' subject attributes) are related at all.  That
guard is Algorithm 2; this module implements it.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes, Signature
from repro.core.profiles import AttributeProfile, TableProfile
from repro.lake.datalake import AttributeRef
from repro.stats.ks import ks_statistic_sorted

#: Number of candidates retrieved for the subject-attribute guard lookups.
_GUARD_POOL = 50


def _lookup_refs(
    indexes: D3LIndexes,
    evidence: EvidenceType,
    profile: AttributeProfile,
    exclude_table: Optional[str],
    query_signatures: Optional[Dict[EvidenceType, Optional[Signature]]] = None,
) -> Set[AttributeRef]:
    return {
        ref
        for ref, _ in indexes.lookup(
            evidence,
            profile,
            k=_GUARD_POOL,
            exclude_table=exclude_table,
            query_signatures=query_signatures,
            max_distance=indexes.threshold_distance(),
        )
    }


def subject_attributes_related(
    indexes: D3LIndexes,
    target_profile: TableProfile,
    source_table: str,
    exclude_table: Optional[str] = None,
) -> bool:
    """True when the target's subject attribute retrieves any attribute of
    ``source_table`` through *any* of the four indexes (the ``I*`` guard)."""
    subject = target_profile.subject_profile()
    if subject is None:
        return False
    query_signatures = indexes.signatures_for(subject)
    for evidence in EvidenceType.indexed():
        for ref in _lookup_refs(
            indexes, evidence, subject, exclude_table, query_signatures
        ):
            if ref.table == source_table:
                return True
    return False


def compute_d_relatedness(
    indexes: D3LIndexes,
    target_table_profile: TableProfile,
    target_attribute: AttributeProfile,
    source_ref: AttributeRef,
    subject_guard: Optional[bool] = None,
    exclude_table: Optional[str] = None,
) -> float:
    """Algorithm 2: the D distance between a target attribute and a lake attribute.

    Returns the KS statistic over the two numeric extents when the guard
    passes (the tables' subject attributes are related by any index, or the
    two attributes are N- or F-related) and 1.0 otherwise.  Non-numeric
    inputs always yield 1.0.

    ``subject_guard`` lets the caller pass a precomputed result of
    :func:`subject_attributes_related` (the discovery engine computes it once
    per source table rather than once per attribute pair).
    """
    source_profile = indexes.profiles.get(source_ref)
    if source_profile is None:
        return 1.0
    if not target_attribute.is_numeric or not source_profile.is_numeric:
        return 1.0

    if subject_guard is None:
        subject_guard = subject_attributes_related(
            indexes, target_table_profile, source_ref.table, exclude_table=exclude_table
        )
    if subject_guard:
        return ks_statistic_sorted(target_attribute.numeric_sorted, source_profile.numeric_sorted)

    query_signatures = indexes.signatures_for(target_attribute)
    for evidence in (EvidenceType.NAME, EvidenceType.FORMAT):
        related = _lookup_refs(
            indexes, evidence, target_attribute, exclude_table, query_signatures
        )
        if source_ref in related:
            return ks_statistic_sorted(
                target_attribute.numeric_sorted, source_profile.numeric_sorted
            )
    return 1.0


def numeric_distance_matrix(
    indexes: D3LIndexes,
    target_table_profile: TableProfile,
    exclude_table: Optional[str] = None,
) -> Dict[str, Dict[AttributeRef, float]]:
    """D distances between every numeric target attribute and every numeric
    lake attribute that passes the Algorithm 2 guard.

    Provided for analysis and tests; the discovery engine computes D
    distances lazily for aligned pairs only.
    """
    result: Dict[str, Dict[AttributeRef, float]] = {}
    guards: Dict[str, bool] = {}
    for name, profile in target_table_profile.attributes.items():
        if not profile.is_numeric:
            continue
        row: Dict[AttributeRef, float] = {}
        for ref, other in indexes.profiles.items():
            if not other.is_numeric:
                continue
            if exclude_table is not None and ref.table == exclude_table:
                continue
            if ref.table not in guards:
                guards[ref.table] = subject_attributes_related(
                    indexes, target_table_profile, ref.table, exclude_table=exclude_table
                )
            distance = compute_d_relatedness(
                indexes,
                target_table_profile,
                profile,
                ref,
                subject_guard=guards[ref.table],
                exclude_table=exclude_table,
            )
            if distance < 1.0:
                row[ref] = distance
        result[name] = row
    return result
