"""Tests for the real-world-style corpus generator."""

import pytest

from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.lake.datalake import AttributeRef


class TestConfigValidation:
    def test_rejects_zero_families(self):
        with pytest.raises(ValueError):
            RealBenchmarkConfig(num_families=0)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            RealBenchmarkConfig(min_rows=50, max_rows=10)

    def test_rejects_bad_dirtiness(self):
        with pytest.raises(ValueError):
            RealBenchmarkConfig(dirtiness=2.0)


class TestGeneration:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_real_benchmark(
            RealBenchmarkConfig(
                num_families=5,
                tables_per_family=4,
                min_rows=15,
                max_rows=40,
                dirtiness=0.4,
                seed=13,
            )
        )

    def test_table_count(self, corpus):
        assert len(corpus.lake) == 5 * 4

    def test_row_bounds(self, corpus):
        for table in corpus.lake:
            assert 15 <= table.cardinality <= 40

    def test_family_members_related(self, corpus):
        names = corpus.lake.table_names
        family_prefix = names[0].rsplit("_", 1)[0]
        family = [name for name in names if name.startswith(family_prefix)]
        assert len(family) == 4
        assert corpus.ground_truth.is_related(family[0], family[1])

    def test_cross_family_unrelated(self, corpus):
        names = corpus.lake.table_names
        assert not corpus.ground_truth.is_related(names[0], names[-1])

    def test_every_table_has_subject_attribute(self, corpus):
        for table in corpus.lake:
            subject = corpus.ground_truth.subject_attribute_of(table.name)
            assert subject is not None
            assert subject in table

    def test_attribute_domains_recorded(self, corpus):
        for table in corpus.lake:
            for column_name in table.column_names:
                assert (
                    corpus.ground_truth.domain_of(AttributeRef(table.name, column_name))
                    is not None
                )

    def test_values_not_simply_copied_across_family(self, corpus):
        # Unlike the Synthetic corpus, family members are generated
        # independently: their subject columns should not be identical.
        names = corpus.lake.table_names
        first = corpus.lake.table(names[0])
        second = corpus.lake.table(names[1])
        subject_first = corpus.ground_truth.subject_attribute_of(names[0])
        subject_second = corpus.ground_truth.subject_attribute_of(names[1])
        values_first = set(first.column(subject_first).non_missing)
        values_second = set(second.column(subject_second).non_missing)
        assert values_first != values_second

    def test_dirtiness_produces_missing_cells(self, corpus):
        total_missing = sum(
            column.null_ratio > 0.0
            for table in corpus.lake
            for column in table.columns
        )
        assert total_missing > 0

    def test_deterministic(self):
        config = RealBenchmarkConfig(num_families=3, tables_per_family=2, seed=21)
        assert (
            generate_real_benchmark(config).lake.tables[0]
            == generate_real_benchmark(config).lake.tables[0]
        )

    def test_custom_name(self):
        config = RealBenchmarkConfig(num_families=2, tables_per_family=2, name="larger_real")
        assert generate_real_benchmark(config).lake.name == "larger_real"
