"""Edge-case behaviour of the discovery engine.

Data lakes contain degenerate members: purely numeric tables, single-column
tables, tables full of missing values, unicode content.  Discovery must stay
well-defined (no crashes, distances within bounds) on all of them.
"""

import pytest

from repro.core.discovery import D3L
from repro.lake.datalake import DataLake
from repro.tables.table import Table


@pytest.fixture
def engine(fast_config):
    return D3L(config=fast_config)


class TestDegenerateLakes:
    def test_query_on_empty_index(self, engine, figure1_tables):
        answer = engine.query(figure1_tables["target"], k=5)
        assert answer.results == []
        assert answer.table_names() == []

    def test_single_table_lake(self, engine, figure1_tables):
        engine.index_table(figure1_tables["sources"][0])
        answer = engine.query(figure1_tables["target"], k=5)
        assert answer.candidate_tables() <= {"gp_practices_s1"}

    def test_numeric_only_lake(self, engine, figure1_tables):
        numbers = Table.from_dict(
            "numbers_only",
            {"Count": ["1", "2", "3"], "Total": ["10", "20", "30"]},
        )
        engine.index_table(numbers)
        answer = engine.query(figure1_tables["target"], k=5)
        for result in answer.results:
            assert 0.0 <= result.distance <= 1.0

    def test_mostly_missing_table(self, engine, figure1_tables):
        sparse = Table.from_dict(
            "sparse",
            {"Practice": [None, "", "Blackfriars"], "City": [None, None, None]},
        )
        engine.index_table(sparse)
        engine.index_table(figure1_tables["sources"][1])
        answer = engine.query(figure1_tables["target"], k=5)
        assert "gp_funding_s2" in answer.candidate_tables()

    def test_unicode_values(self, engine):
        unicode_table = Table.from_dict(
            "unicode_places",
            {"Ort": ["Zürich", "København", "Łódź"], "Einwohner": ["400000", "600000", "700000"]},
        )
        engine.index_table(unicode_table)
        target = Table.from_dict("t", {"City": ["Zürich", "Genève"]})
        answer = engine.query(target, k=3, exclude_self=False)
        assert all(0.0 <= result.distance <= 1.0 for result in answer.results)

    def test_duplicate_indexing_is_idempotent_in_size(self, engine, figure1_tables):
        engine.index_table(figure1_tables["sources"][0])
        count_once = engine.indexes.attribute_count
        engine.index_table(figure1_tables["sources"][0])
        assert engine.indexes.attribute_count == count_once


class TestDegenerateTargets:
    def test_single_column_target(self, figure1_engine):
        target = Table.from_dict("tiny_target", {"City": ["Salford", "Bolton"]})
        answer = figure1_engine.query(target, k=3, exclude_self=False)
        assert answer.results
        assert all(
            match.target_attribute == "City"
            for result in answer.results
            for match in result.matches
        )

    def test_numeric_only_target(self, figure1_engine):
        target = Table.from_dict("numeric_target", {"Patients": ["1000", "2000", "1500"]})
        answer = figure1_engine.query(target, k=3, exclude_self=False)
        for result in answer.results:
            assert 0.0 <= result.distance <= 1.0

    def test_target_with_empty_column(self, figure1_engine):
        target = Table.from_dict(
            "partial_target", {"Practice": ["Blackfriars"], "Notes": [None]}
        )
        answer = figure1_engine.query(target, k=3, exclude_self=False)
        assert answer.results

    def test_k_larger_than_lake(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=500)
        assert len(answer.top()) == len(answer.results) <= 3

    def test_join_query_on_degenerate_target(self, figure1_engine):
        target = Table.from_dict("tiny_target", {"City": ["Salford"]})
        augmented = figure1_engine.query_with_joins(target, k=2, exclude_self=False)
        assert augmented.joined_tables.isdisjoint(set(augmented.base.table_names(2)))
