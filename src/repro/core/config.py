"""Configuration of the D3L reproduction.

Defaults follow the paper's experimental setup: q-grams with q = 4,
MinHash/LSH-Forest signatures of size 256, an LSH similarity threshold of
0.7, and fastText-style word embeddings (here the offline substitute model
with a configurable dimension).
"""

from __future__ import annotations

from dataclasses import dataclass


def require_positive(name: str, value: float) -> None:
    """Reject non-positive parameter values with a uniform message.

    Both :class:`D3LConfig` and the query-protocol objects of
    :mod:`repro.core.api` funnel their scalar checks through these helpers,
    so the configuration layer and the serving layer report invalid
    parameters with the same error surface.
    """
    if value <= 0:
        raise ValueError(f"{name} must be positive")


def require_open_unit_interval(name: str, value: float) -> None:
    """Reject values outside the open interval (0, 1)."""
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1)")


@dataclass
class D3LConfig:
    """All tunable parameters of the discovery engine.

    Attributes
    ----------
    qgram_size:
        q of the attribute-name q-grams (paper: 4).
    num_hashes:
        Length of MinHash and random-projection signatures (paper: 256).
    lsh_threshold:
        Target similarity threshold of the LSH configuration (paper: 0.7).
    num_trees:
        Number of prefix trees in each LSH Forest.
    embedding_dimension:
        Dimensionality of the word-embedding model substitute.
    candidate_multiplier / min_candidates:
        Per-attribute lookups retrieve ``max(min_candidates,
        candidate_multiplier * k)`` candidates from each index before
        re-ranking, so the candidate pool grows with the requested answer
        size the way an LSH Forest's descent does.
    overlap_threshold:
        τ of section IV: minimum value-overlap coefficient for SA-joinability.
    join_candidate_pool:
        Candidates retrieved from the value index per subject-attribute probe
        during SA-join graph construction.  A fixed cap keeps the blocking
        step at O(|lake| * pool) candidate pairs instead of the O(|lake|²)
        the seed's ``2 × |lake|`` per-probe pool produced.
    join_prefilter_margin:
        Fraction of ``overlap_threshold`` the *estimated* overlap coefficient
        (section IV's inclusion–exclusion identity over the MinHash Jaccard
        estimate) must reach for a candidate pair to proceed to exact
        value-sample verification.  The estimate lives on the token sets the
        value index is built from while verification compares distinct-value
        samples, so the filter is a heuristic: the default 0.5 margin leaves
        generous room for MinHash noise and the token/value mismatch
        (admissibility on a given lake is what the equivalence tests and the
        tracked benchmark assert against the unfiltered oracle), and 0.0
        disables the pre-filter entirely, guaranteeing the
        ``build_sequential`` edge set on any lake.
    max_join_path_length:
        Maximum number of hops Algorithm 3 will follow from a top-k table.
    max_join_paths:
        Upper bound on the number of join paths enumerated per query (dense
        join graphs otherwise have combinatorially many acyclic paths).
    seed:
        Master seed; all hash families and random projections derive from it.
    """

    qgram_size: int = 4
    num_hashes: int = 256
    lsh_threshold: float = 0.7
    num_trees: int = 8
    embedding_dimension: int = 64
    candidate_multiplier: int = 5
    min_candidates: int = 50
    overlap_threshold: float = 0.7
    join_candidate_pool: int = 128
    join_prefilter_margin: float = 0.5
    max_join_path_length: int = 3
    max_join_paths: int = 20000
    seed: int = 42

    def __post_init__(self) -> None:
        require_positive("qgram_size", self.qgram_size)
        require_positive("num_hashes", self.num_hashes)
        require_open_unit_interval("lsh_threshold", self.lsh_threshold)
        if self.num_trees <= 0 or self.num_trees > self.num_hashes:
            raise ValueError("num_trees must be in [1, num_hashes]")
        require_positive("embedding_dimension", self.embedding_dimension)
        require_positive("candidate_multiplier", self.candidate_multiplier)
        require_positive("min_candidates", self.min_candidates)
        if not 0.0 < self.overlap_threshold <= 1.0:
            raise ValueError("overlap_threshold must be in (0, 1]")
        require_positive("join_candidate_pool", self.join_candidate_pool)
        if not 0.0 <= self.join_prefilter_margin <= 1.0:
            raise ValueError("join_prefilter_margin must be in [0, 1]")
        require_positive("max_join_path_length", self.max_join_path_length)
        require_positive("max_join_paths", self.max_join_paths)

    def candidate_pool_size(self, k: int) -> int:
        """Number of candidates to retrieve per attribute for an answer size k."""
        return max(self.min_candidates, self.candidate_multiplier * max(k, 1))
