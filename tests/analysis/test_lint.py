"""The pyflakes-or-fallback lint gate.

``run_lint`` dispatches to pyflakes when importable; these tests pin the
dependency-free fallback (the configuration the container actually runs)
so the tier-1 lint gate is deterministic on machines without pyflakes.
"""

import textwrap
from pathlib import Path

from repro.analysis.lint import _fallback_lint, run_lint


def lint_tree(tmp_path, files):
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return _fallback_lint(sorted(paths))


class TestUnusedImports:
    def test_unused_import_is_reported_with_location(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                import os
                import sys

                print(sys.argv)
                """
            },
        )
        assert len(problems) == 1
        assert "'os' imported but unused" in problems[0]
        assert "mod.py:2" in problems[0]

    def test_from_import_alias_tracked_by_alias(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                from json import dumps as to_json
                from json import loads as from_json

                print(to_json({}))
                """
            },
        )
        assert len(problems) == 1
        assert "'from_json'" in problems[0]

    def test_attribute_use_counts(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                import os.path

                print(os.path.sep)
                """
            },
        )
        assert problems == []

    def test_all_string_keeps_reexport_alive(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                from json import dumps

                __all__ = ["dumps"]
                """
            },
        )
        assert problems == []

    def test_init_py_reexports_are_exempt(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {"pkg/__init__.py": "from json import dumps\n"},
        )
        assert problems == []

    def test_future_imports_are_exempt(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {"mod.py": "from __future__ import annotations\n"},
        )
        assert problems == []


class TestDuplicateDefinitions:
    def test_duplicate_function_reported(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                def handler():
                    return 1


                def handler():
                    return 2
                """
            },
        )
        assert len(problems) == 1
        assert "redefinition of 'handler'" in problems[0]

    def test_decorated_redefinition_is_legitimate(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                class Box:
                    @property
                    def value(self):
                        return self._value

                    @value.setter
                    def value(self, new):
                        self._value = new
                """
            },
        )
        assert problems == []

    def test_class_scope_duplicates_reported(self, tmp_path):
        problems = lint_tree(
            tmp_path,
            {
                "mod.py": """
                class Box:
                    def get(self):
                        return 1

                    def get(self):
                        return 2
                """
            },
        )
        assert len(problems) == 1


class TestDispatch:
    def test_run_lint_is_clean_on_shipped_src(self):
        # Whichever engine resolves (pyflakes or the fallback), the shipped
        # tree must be lint-clean — this is the tier-1 gate.
        assert run_lint([Path(__file__).resolve().parents[2] / "src"]) == []

    def test_syntax_errors_are_not_linted(self, tmp_path):
        (tmp_path / "broken.py").write_text("def nope(:\n")
        assert _fallback_lint([tmp_path / "broken.py"]) == []
