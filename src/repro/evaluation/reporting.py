"""Plain-text rendering of experiment results.

The benchmark scripts print the same rows/series the paper's tables and
figures report; these helpers keep that printing consistent and readable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence


def render_rows(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Render a list of homogeneous dictionaries as an aligned text table."""
    if not rows:
        return f"{title or 'results'}: (no rows)"
    columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [_format_value(row.get(column)) for column in columns]
        )
    widths = [
        max(len(column), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(value.ljust(width) for value, width in zip(rendered, widths)))
    return "\n".join(lines)


def format_series_table(
    rows: Sequence[Mapping[str, object]],
    group_by: str,
    x: str,
    y: str,
    title: Optional[str] = None,
) -> str:
    """Pivot long-form rows into one line per group (the paper's curve format).

    Example: ``format_series_table(rows, group_by="system", x="k",
    y="precision")`` prints one precision-vs-k series per system.
    """
    if not rows:
        return f"{title or 'series'}: (no rows)"
    xs = sorted({row[x] for row in rows}, key=lambda value: (isinstance(value, str), value))
    groups: Dict[object, Dict[object, object]] = {}
    for row in rows:
        groups.setdefault(row[group_by], {})[row[x]] = row[y]
    pivoted = []
    for group, series in groups.items():
        entry: Dict[str, object] = {group_by: group}
        for x_value in xs:
            entry[f"{x}={x_value}"] = series.get(x_value)
        pivoted.append(entry)
    return render_rows(pivoted, title=title)


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
