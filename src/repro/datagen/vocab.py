"""An open-government vocabulary of semantic domains.

A :class:`SemanticDomain` is the generator-side notion of the paper's
"domain": attributes whose values are drawn from the same semantic domain are
attribute-level related (Definition 1).  Each domain knows how to produce
values, which attribute names it typically appears under, which ontology
class it belongs to (used by the TUS baseline's knowledge-base substitute),
and whether it is numeric.

The default vocabulary covers the domains that dominate UK open-government
data: organisations (GP practices, schools, businesses), locations (streets,
cities, postcodes, regions), people, dates/times, and a range of numeric
measures (payments, counts, ratings, percentages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

# --------------------------------------------------------------------------- #
# raw lexicons
# --------------------------------------------------------------------------- #

FIRST_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda",
    "William", "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph",
    "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Aisha", "Omar", "Priya",
    "Wei", "Fatima", "Carlos", "Yuki", "Ahmed", "Sofia", "Ivan",
]

LAST_NAMES = [
    "Smith", "Jones", "Taylor", "Brown", "Williams", "Wilson", "Johnson", "Davies",
    "Robinson", "Wright", "Thompson", "Evans", "Walker", "White", "Roberts",
    "Green", "Hall", "Wood", "Jackson", "Clarke", "Patel", "Khan", "Lewis",
    "James", "Phillips", "Mason", "Mitchell", "Rose", "Hussain", "Ali",
]

CITIES = [
    "Manchester", "Salford", "Bolton", "Bury", "Oldham", "Rochdale", "Stockport",
    "Tameside", "Trafford", "Wigan", "London", "Birmingham", "Leeds", "Sheffield",
    "Liverpool", "Bristol", "Newcastle", "Nottingham", "Leicester", "Coventry",
    "Belfast", "Cardiff", "Edinburgh", "Glasgow", "Aberdeen", "Dundee", "York",
    "Preston", "Blackburn", "Blackpool", "Derby", "Plymouth", "Southampton",
    "Portsmouth", "Norwich", "Exeter", "Durham", "Lancaster", "Chester", "Bath",
]

REGIONS = [
    "North West", "North East", "Yorkshire and the Humber", "East Midlands",
    "West Midlands", "East of England", "London", "South East", "South West",
    "Wales", "Scotland", "Northern Ireland",
]

STREET_NAMES = [
    "High", "Church", "Station", "Victoria", "Park", "Mill", "London", "Main",
    "King", "Queen", "Market", "Chapel", "School", "Bridge", "Oxford", "Portland",
    "Botanic", "Rupert", "Deansgate", "Albert", "George", "Cross", "Spring",
    "Water", "North", "South", "West", "East", "Garden", "Grove",
]

STREET_TYPES = ["Street", "Road", "Avenue", "Lane", "Drive", "Close", "Way", "Place", "Court", "Terrace"]

ORGANISATION_SUFFIXES = [
    "Medical Centre", "Medical Practice", "Health Centre", "Surgery", "Clinic",
    "Primary Care Centre", "Family Practice", "GP Practice",
]

BUSINESS_SUFFIXES = ["Ltd", "PLC", "Group", "Holdings", "Services", "Solutions", "Partners", "Consulting"]

BUSINESS_SECTORS = [
    "Retail", "Construction", "Manufacturing", "Hospitality", "Finance",
    "Logistics", "Agriculture", "Education", "Healthcare", "Technology",
    "Energy", "Transport", "Creative Arts", "Legal Services",
]

SCHOOL_TYPES = [
    "Primary School", "High School", "Academy", "Grammar School", "College",
    "Infant School", "Junior School", "Community School",
]

SCHOOL_SUBJECTS = [
    "Mathematics", "English", "Science", "History", "Geography", "Art", "Music",
    "Physical Education", "Computing", "Languages", "Design Technology",
]

TRANSPORT_MODES = ["Bus", "Tram", "Train", "Metro", "Coach", "Ferry", "Cycle Hire"]

STATION_SUFFIXES = ["Station", "Interchange", "Stop", "Terminal", "Park and Ride"]

HEALTH_SERVICES = [
    "General Practice", "Dentistry", "Physiotherapy", "Mental Health",
    "Vaccination", "Screening", "Maternity", "Pharmacy", "Optometry",
    "Community Nursing", "Podiatry", "Dietetics",
]

JOB_TITLES = [
    "Manager", "Director", "Administrator", "Analyst", "Officer", "Assistant",
    "Coordinator", "Practitioner", "Consultant", "Technician", "Inspector",
    "Adviser", "Nurse", "Clerk",
]

DEPARTMENTS = [
    "Finance", "Human Resources", "Planning", "Public Health", "Environment",
    "Housing", "Transport", "Education", "Social Care", "Licensing",
    "Waste Services", "Parks and Leisure",
]

COUNCIL_SERVICES = [
    "Waste Collection", "Street Cleaning", "Housing Benefit", "Council Tax",
    "Planning Applications", "Library Services", "Road Maintenance",
    "Parking Permits", "Business Rates", "Pest Control",
]

WEEKDAYS = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]

MONTHS = [
    "January", "February", "March", "April", "May", "June", "July", "August",
    "September", "October", "November", "December",
]

POSTCODE_AREAS = [
    "M", "BL", "OL", "SK", "WN", "BT", "LS", "S", "L", "B", "NE", "NG", "LE",
    "CV", "BS", "CF", "EH", "G", "AB", "YO", "PR", "BB", "FY", "DE", "PL", "SO",
    "PO", "NR", "EX", "DH", "LA", "CH", "BA", "W1", "SW1", "E1",
]


# --------------------------------------------------------------------------- #
# semantic domains
# --------------------------------------------------------------------------- #


@dataclass
class SemanticDomain:
    """A value domain with generators and naming metadata.

    Attributes
    ----------
    name:
        Unique domain identifier (e.g. ``"city"``); equality of this name is
        what "drawn from the same domain" means for the generated ground
        truth.
    aliases:
        Attribute names under which the domain appears in tables.
    ontology_class:
        The class of the synthetic knowledge base the domain's values map to
        (used by the TUS baseline); several domains may share a class.
    generate:
        ``generate(rng) -> str`` producing a clean value.
    numeric:
        Whether the domain is numeric.
    """

    name: str
    aliases: List[str]
    ontology_class: str
    generate: Callable[[np.random.Generator], str]
    numeric: bool = False

    def sample(self, rng: np.random.Generator, count: int) -> List[str]:
        """Generate ``count`` values."""
        return [self.generate(rng) for _ in range(count)]


def _choice(rng: np.random.Generator, options: Sequence[str]) -> str:
    return str(options[int(rng.integers(0, len(options)))])


def _person_name(rng: np.random.Generator) -> str:
    return f"{_choice(rng, FIRST_NAMES)} {_choice(rng, LAST_NAMES)}"


def _practice_name(rng: np.random.Generator) -> str:
    style = int(rng.integers(0, 3))
    if style == 0:
        return f"Dr {_choice(rng, FIRST_NAMES)[0]} {_choice(rng, LAST_NAMES)}"
    if style == 1:
        return f"{_choice(rng, STREET_NAMES)} {_choice(rng, ORGANISATION_SUFFIXES)}"
    return f"{_choice(rng, CITIES)} {_choice(rng, ORGANISATION_SUFFIXES)}"


def _business_name(rng: np.random.Generator) -> str:
    return f"{_choice(rng, LAST_NAMES)} {_choice(rng, BUSINESS_SECTORS)} {_choice(rng, BUSINESS_SUFFIXES)}"


def _school_name(rng: np.random.Generator) -> str:
    return f"{_choice(rng, CITIES)} {_choice(rng, SCHOOL_TYPES)}"


def _station_name(rng: np.random.Generator) -> str:
    return f"{_choice(rng, CITIES)} {_choice(rng, STATION_SUFFIXES)}"


def _street_address(rng: np.random.Generator) -> str:
    number = int(rng.integers(1, 250))
    return f"{number} {_choice(rng, STREET_NAMES)} {_choice(rng, STREET_TYPES)}"


def _postcode(rng: np.random.Generator) -> str:
    area = _choice(rng, POSTCODE_AREAS)
    district = int(rng.integers(1, 30))
    sector = int(rng.integers(0, 10))
    letters = "ABDEFGHJLNPQRSTUWXYZ"
    unit = "".join(letters[int(rng.integers(0, len(letters)))] for _ in range(2))
    return f"{area}{district} {sector}{unit}"


def _date(rng: np.random.Generator) -> str:
    year = int(rng.integers(2010, 2024))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return f"{day:02d}/{month:02d}/{year}"


def _opening_hours(rng: np.random.Generator) -> str:
    start = int(rng.integers(6, 10))
    end = int(rng.integers(16, 22))
    return f"{start:02d}:00-{end:02d}:00"


def _phone(rng: np.random.Generator) -> str:
    return f"0{int(rng.integers(100, 200))} {int(rng.integers(100, 999))} {int(rng.integers(1000, 9999))}"


def _email(rng: np.random.Generator) -> str:
    name = _choice(rng, LAST_NAMES).lower()
    org = _choice(rng, ["nhs.uk", "gov.uk", "council.gov.uk", "outlook.com", "mail.org"])
    return f"{name}{int(rng.integers(1, 99))}@{org}"


def _reference_code(rng: np.random.Generator) -> str:
    letters = "ABCDEFGHJKLMNPQRSTUVWXYZ"
    prefix = "".join(letters[int(rng.integers(0, len(letters)))] for _ in range(3))
    return f"{prefix}-{int(rng.integers(10000, 99999))}"


def _numeric(low: float, high: float, decimals: int = 0) -> Callable[[np.random.Generator], str]:
    def generator(rng: np.random.Generator) -> str:
        value = float(rng.uniform(low, high))
        if decimals == 0:
            return str(int(round(value)))
        return f"{value:.{decimals}f}"

    return generator


def _lognormal(mean: float, sigma: float, decimals: int = 2) -> Callable[[np.random.Generator], str]:
    def generator(rng: np.random.Generator) -> str:
        value = float(rng.lognormal(mean, sigma))
        return f"{value:.{decimals}f}"

    return generator


class Vocabulary:
    """A catalogue of semantic domains keyed by name."""

    def __init__(self, domains: Sequence[SemanticDomain]) -> None:
        self._domains: Dict[str, SemanticDomain] = {}
        for domain in domains:
            if domain.name in self._domains:
                raise ValueError(f"duplicate domain name {domain.name!r}")
            self._domains[domain.name] = domain

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __len__(self) -> int:
        return len(self._domains)

    def domain(self, name: str) -> SemanticDomain:
        """The domain called ``name`` (KeyError when absent)."""
        try:
            return self._domains[name]
        except KeyError:
            raise KeyError(f"vocabulary has no domain {name!r}") from None

    @property
    def domains(self) -> List[SemanticDomain]:
        """All domains, in insertion order."""
        return list(self._domains.values())

    @property
    def names(self) -> List[str]:
        """All domain names."""
        return list(self._domains)

    def textual_domains(self) -> List[SemanticDomain]:
        """Domains with textual values."""
        return [domain for domain in self._domains.values() if not domain.numeric]

    def numeric_domains(self) -> List[SemanticDomain]:
        """Domains with numeric values."""
        return [domain for domain in self._domains.values() if domain.numeric]

    def alias_for(self, name: str, rng: np.random.Generator) -> str:
        """A random attribute-name alias of the domain."""
        domain = self.domain(name)
        return _choice(rng, domain.aliases)


def default_vocabulary() -> Vocabulary:
    """The default open-government vocabulary (30+ semantic domains)."""
    domains = [
        SemanticDomain(
            "practice_name",
            ["Practice Name", "Practice", "GP", "GP Practice", "Surgery Name"],
            "organisation",
            _practice_name,
        ),
        SemanticDomain(
            "business_name",
            ["Business Name", "Company", "Trading Name", "Organisation"],
            "organisation",
            _business_name,
        ),
        SemanticDomain(
            "school_name",
            ["School Name", "School", "Establishment Name", "Institution"],
            "organisation",
            _school_name,
        ),
        SemanticDomain(
            "station_name",
            ["Station", "Stop Name", "Interchange", "Location Name"],
            "place",
            _station_name,
        ),
        SemanticDomain(
            "person_name",
            ["Name", "Contact Name", "Owner", "Head Teacher", "Responsible Officer"],
            "person",
            _person_name,
        ),
        SemanticDomain(
            "street_address",
            ["Address", "Street", "Address Line 1", "Location Address"],
            "place",
            _street_address,
        ),
        SemanticDomain(
            "city",
            ["City", "Town", "Location", "Locality", "Area"],
            "place",
            lambda rng: _choice(rng, CITIES),
        ),
        SemanticDomain(
            "region",
            ["Region", "Area Name", "Government Region", "NHS Region"],
            "place",
            lambda rng: _choice(rng, REGIONS),
        ),
        SemanticDomain(
            "postcode",
            ["Postcode", "Post Code", "PostCode", "Postal Code"],
            "place",
            _postcode,
        ),
        SemanticDomain(
            "date",
            ["Date", "Start Date", "Inspection Date", "Registration Date", "Published"],
            "time",
            _date,
        ),
        SemanticDomain(
            "opening_hours",
            ["Opening hours", "Hours", "Opening Times", "Operating Hours"],
            "time",
            _opening_hours,
        ),
        SemanticDomain(
            "weekday",
            ["Day", "Weekday", "Collection Day"],
            "time",
            lambda rng: _choice(rng, WEEKDAYS),
        ),
        SemanticDomain(
            "month",
            ["Month", "Reporting Month", "Period"],
            "time",
            lambda rng: _choice(rng, MONTHS),
        ),
        SemanticDomain(
            "phone",
            ["Phone", "Telephone", "Contact Number"],
            "contact",
            _phone,
        ),
        SemanticDomain(
            "email",
            ["Email", "Contact Email", "E-mail"],
            "contact",
            _email,
        ),
        SemanticDomain(
            "reference_code",
            ["Reference", "Code", "Record ID", "Case Reference", "URN"],
            "identifier",
            _reference_code,
        ),
        SemanticDomain(
            "health_service",
            ["Service", "Service Type", "Provision", "Care Category"],
            "service",
            lambda rng: _choice(rng, HEALTH_SERVICES),
        ),
        SemanticDomain(
            "business_sector",
            ["Sector", "Industry", "Business Type", "Category"],
            "category",
            lambda rng: _choice(rng, BUSINESS_SECTORS),
        ),
        SemanticDomain(
            "school_subject",
            ["Subject", "Course", "Curriculum Area"],
            "category",
            lambda rng: _choice(rng, SCHOOL_SUBJECTS),
        ),
        SemanticDomain(
            "transport_mode",
            ["Mode", "Transport Mode", "Vehicle Type"],
            "category",
            lambda rng: _choice(rng, TRANSPORT_MODES),
        ),
        SemanticDomain(
            "job_title",
            ["Job Title", "Role", "Position", "Post"],
            "category",
            lambda rng: _choice(rng, JOB_TITLES),
        ),
        SemanticDomain(
            "department",
            ["Department", "Directorate", "Service Area", "Team"],
            "category",
            lambda rng: _choice(rng, DEPARTMENTS),
        ),
        SemanticDomain(
            "council_service",
            ["Council Service", "Service Name", "Request Type"],
            "service",
            lambda rng: _choice(rng, COUNCIL_SERVICES),
        ),
        # --- numeric domains ------------------------------------------------
        SemanticDomain(
            "patient_count",
            ["Patients", "Registered Patients", "List Size", "Patient Count"],
            "measure",
            _numeric(500, 15000),
            numeric=True,
        ),
        SemanticDomain(
            "payment_amount",
            ["Payment", "Amount", "Funding", "Total Payment", "Spend"],
            "measure",
            _lognormal(9.5, 1.0),
            numeric=True,
        ),
        SemanticDomain(
            "employee_count",
            ["Employees", "Staff Count", "Headcount", "FTE"],
            "measure",
            _numeric(1, 2500),
            numeric=True,
        ),
        SemanticDomain(
            "pupil_count",
            ["Pupils", "Number on Roll", "Enrolment", "Student Count"],
            "measure",
            _numeric(50, 2200),
            numeric=True,
        ),
        SemanticDomain(
            "rating",
            ["Rating", "Score", "Overall Rating", "Inspection Score"],
            "measure",
            _numeric(1, 5),
            numeric=True,
        ),
        SemanticDomain(
            "percentage",
            ["Percentage", "Rate", "Proportion", "Attainment"],
            "measure",
            _numeric(0, 100, decimals=1),
            numeric=True,
        ),
        SemanticDomain(
            "year",
            ["Year", "Financial Year", "Reporting Year"],
            "time",
            _numeric(2005, 2024),
            numeric=True,
        ),
        SemanticDomain(
            "latitude",
            ["Latitude", "Lat"],
            "place",
            _numeric(50.0, 58.7, decimals=5),
            numeric=True,
        ),
        SemanticDomain(
            "longitude",
            ["Longitude", "Long", "Lng"],
            "place",
            _numeric(-6.4, 1.8, decimals=5),
            numeric=True,
        ),
        SemanticDomain(
            "distance_km",
            ["Distance", "Distance km", "Route Length"],
            "measure",
            _numeric(0.2, 120, decimals=1),
            numeric=True,
        ),
        SemanticDomain(
            "price",
            ["Price", "Fare", "Cost", "Charge"],
            "measure",
            _lognormal(1.5, 0.8),
            numeric=True,
        ),
    ]
    return Vocabulary(domains)
