"""CSV input/output for tables.

The corpora used in the paper are directories of CSV files (open-government
data).  The generators in :mod:`repro.datagen` can materialise their corpora
to disk with these helpers, and lakes can be loaded back from such
directories.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.tables.table import Table

PathLike = Union[str, Path]


def _table_name_from_path(path: Path) -> str:
    return path.stem


def read_csv(path: PathLike, name: Optional[str] = None, max_rows: Optional[int] = None) -> Table:
    """Read a CSV file into a :class:`Table`.

    The first row is taken as the header.  Empty header cells are given
    positional names (``column_3``) because dirty open-data files do contain
    them and attribute-name evidence must still be computable.
    """
    path = Path(path)
    table_name = name or _table_name_from_path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty") from None
        header = [
            cell.strip() if cell and cell.strip() else f"column_{index}"
            for index, cell in enumerate(header)
        ]
        rows: List[List[str]] = []
        for row_index, row in enumerate(reader):
            if max_rows is not None and row_index >= max_rows:
                break
            rows.append(row)
    return Table.from_rows(table_name, header, rows)


def write_csv(table: Table, path: PathLike) -> Path:
    """Write ``table`` to ``path`` as a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(["" if cell is None else cell for cell in row])
    return path


def read_csv_directory(
    directory: PathLike,
    pattern: str = "*.csv",
    max_tables: Optional[int] = None,
    max_rows: Optional[int] = None,
) -> List[Table]:
    """Read every CSV file under ``directory`` matching ``pattern``.

    Files that cannot be parsed are skipped; a data lake is expected to
    contain some malformed members and discovery must not fail because of
    them.
    """
    directory = Path(directory)
    tables: List[Table] = []
    for index, path in enumerate(sorted(directory.glob(pattern))):
        if max_tables is not None and len(tables) >= max_tables:
            break
        try:
            tables.append(read_csv(path, max_rows=max_rows))
        except (ValueError, OSError):
            continue
    return tables


def write_csv_directory(tables: Iterable[Table], directory: PathLike) -> List[Path]:
    """Write each table to ``directory`` as ``<table name>.csv``."""
    directory = Path(directory)
    paths = []
    for table in tables:
        paths.append(write_csv(table, directory / f"{table.name}.csv"))
    return paths
