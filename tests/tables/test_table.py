"""Tests for the Table abstraction."""

import pytest

from repro.tables.column import Column
from repro.tables.table import Table


@pytest.fixture
def practices_table():
    return Table.from_dict(
        "practices",
        {
            "Practice": ["Blackfriars", "Radclife Care", "Bolton Medical"],
            "City": ["Salford", "Manchester", "Bolton"],
            "Patients": ["3572", "2209", "1840"],
        },
    )


class TestConstruction:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Table("", [Column("a", ["1"])])

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_rejects_unequal_column_lengths(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", ["1"]), Column("b", ["1", "2"])])

    def test_rejects_duplicate_column_names(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", ["1"]), Column("a", ["2"])])

    def test_from_rows_pads_short_rows(self):
        table = Table.from_rows("t", ["a", "b"], [["1"], ["2", "3"]])
        assert table.column("b").values == [None, "3"]

    def test_from_rows_truncates_long_rows(self):
        table = Table.from_rows("t", ["a"], [["1", "extra"]])
        assert table.column("a").values == ["1"]

    def test_from_dict_preserves_column_order(self, practices_table):
        assert practices_table.column_names == ["Practice", "City", "Patients"]


class TestAccessors:
    def test_arity(self, practices_table):
        assert practices_table.arity == 3

    def test_cardinality(self, practices_table):
        assert practices_table.cardinality == 3

    def test_len_is_cardinality(self, practices_table):
        assert len(practices_table) == 3

    def test_numeric_ratio(self, practices_table):
        assert practices_table.numeric_ratio == pytest.approx(1 / 3)

    def test_contains(self, practices_table):
        assert "City" in practices_table
        assert "Missing" not in practices_table

    def test_column_lookup(self, practices_table):
        assert practices_table.column("City").values[0] == "Salford"

    def test_column_lookup_missing_raises_keyerror(self, practices_table):
        with pytest.raises(KeyError):
            practices_table.column("Nope")

    def test_column_index(self, practices_table):
        assert practices_table.column_index("Patients") == 2

    def test_column_index_missing(self, practices_table):
        with pytest.raises(KeyError):
            practices_table.column_index("Nope")

    def test_has_column(self, practices_table):
        assert practices_table.has_column("Practice")

    def test_equality(self, practices_table):
        clone = Table.from_dict(
            "practices",
            {
                "Practice": ["Blackfriars", "Radclife Care", "Bolton Medical"],
                "City": ["Salford", "Manchester", "Bolton"],
                "Patients": ["3572", "2209", "1840"],
            },
        )
        assert practices_table == clone


class TestRowViews:
    def test_rows_iteration(self, practices_table):
        rows = list(practices_table.rows())
        assert rows[0] == ("Blackfriars", "Salford", "3572")
        assert len(rows) == 3

    def test_single_row(self, practices_table):
        assert practices_table.row(1) == ("Radclife Care", "Manchester", "2209")

    def test_head_limits_rows(self, practices_table):
        assert len(practices_table.head(2)) == 2


class TestDerivedTables:
    def test_with_name(self, practices_table):
        assert practices_table.with_name("other").name == "other"

    def test_take_rows(self, practices_table):
        subset = practices_table.take_rows([2])
        assert subset.cardinality == 1
        assert subset.column("City").values == ["Bolton"]

    def test_take_rows_keeps_all_columns(self, practices_table):
        subset = practices_table.take_rows([0, 1])
        assert subset.arity == practices_table.arity

    def test_select_columns(self, practices_table):
        projected = practices_table.select_columns(["City", "Practice"])
        assert projected.column_names == ["City", "Practice"]

    def test_select_missing_column_raises(self, practices_table):
        with pytest.raises(KeyError):
            practices_table.select_columns(["Nope"])

    def test_estimated_bytes_positive(self, practices_table):
        assert practices_table.estimated_bytes() > 0

    def test_describe_fields(self, practices_table):
        description = practices_table.describe()
        assert description["arity"] == 3
        assert description["cardinality"] == 3
        assert description["name"] == "practices"
