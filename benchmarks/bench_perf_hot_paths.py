"""Hot-path microbenchmarks: vectorized LSH backend vs the scalar seed paths.

Runs index-time and top-k query-time microbenchmarks over lakes of
100/500/1000 attributes, comparing the NumPy-backed
:class:`~repro.lsh.lsh_forest.LSHForest` + batched distance engine against
the scalar reference (:mod:`repro.lsh.reference`, the seed implementation's
layout), and verifies the two produce identical top-k rankings before any
timing is trusted.

An index-construction section additionally times

* per-attribute ``D3LIndexes.signatures_for`` vs the lake-level
  ``batch_signatures`` — the signature-generation unit ``add_lake`` actually
  runs, covering all three MinHash evidence types plus the random
  projections (tracked floor: >= 3x at 1000 attributes), and
* a full ``D3LIndexes.add_lake`` (profile + sign + insert) with one worker
  vs ``PARALLEL_WORKERS`` processes, reported in attributes/second.  The
  parallel number is informational: it only beats serial when real cores
  are available (``available_cpus`` is recorded alongside), and the
  sharded-vs-serial *equivalence* is locked down by
  ``tests/core/test_parallel_build.py`` rather than by this timing, and
* the snapshot-ship cost of worker fan-out: bytes serialized per worker and
  per-worker RSS delta for the pickled-copy path vs the shared-memory
  attach (:class:`~repro.core.shared.SharedIndexSnapshot`), with the
  attached state verified bit-identical before the numbers are trusted
  (tracked floor: the shared descriptor ships >= 10x fewer bytes than the
  pickled snapshot at 1000 attributes).

A batched-query section times the full query engine — ``D3L.query`` (the
sequential per-attribute oracle) vs ``D3L.query_batch`` (per-evidence
sweeps, vectorized Algorithm 2 KS pass) — on pre-profiled targets over a
mixed numeric/text lake, verifying identical full rankings before trusting
the timings (tracked floor: >= 3x at 1000 attributes), and checks that the
``workers=PARALLEL_WORKERS`` process fan-out answers exactly like
``workers=1``.

A session-cache section times repeated-target serving through
:class:`~repro.core.api.DiscoverySession` against the uncached
``query_batch`` path on raw tables: the cache-warm second sweep of the same
targets skips re-profiling/re-signing and must beat the uncached path
(tracked floor: >= 2x at 1000 attributes) with bit-identical rankings.

A join-graph section times batched SA-join graph construction
(``SAJoinGraph.build``: stored-signature probes, shared per-tree forest
descents, vectorized estimated-overlap pre-filter, batched verification)
against the scalar probe-at-a-time ``build_sequential`` over a lake of
per-family SA-join cliques, verifying that the two — and the
``workers=PARALLEL_WORKERS`` sharded verification — produce identical edge
sets before trusting the timings (tracked floor: >= 3x at 1000 attributes).

An incremental-mutation section (top-level ``incremental_mutation`` key, like
the ``serving`` section ``bench_serving.py`` maintains) times indexing one
table into an already-built 1000-attribute index — ``D3LIndexes.add_table``,
the unit ``D3L.index_table`` runs — against rebuilding the whole index from
scratch over the same tables, with the mutated index verified bit-identical
to the rebuild before either timing is trusted (tracked floor: the single
add is >= 10x cheaper than the rebuild).

Run directly (writes ``BENCH_hot_paths.json`` at the repository root)::

    PYTHONPATH=src python benchmarks/bench_perf_hot_paths.py

The JSON records one entry per lake size with index/query wall-clock for
both backends, the speedup ratios, and the equivalence flags, so the perf
trajectory of the hot paths can be tracked PR over PR.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lsh.hashing import clear_token_hash_cache  # noqa: E402
from repro.lsh.lsh_forest import LSHForest  # noqa: E402
from repro.lsh.minhash import MinHashFactory, batch_jaccard_distances  # noqa: E402
from repro.lsh.reference import (  # noqa: E402
    ScalarLSHForest,
    scalar_hash_tokens,
    scalar_signature_distance,
)

#: Paper configuration: MinHash size 256 split over 8 trees.
NUM_HASHES = 256
NUM_TREES = 8
#: Lake sizes (attribute counts) swept by the benchmark.
LAKE_SIZES = (100, 500, 1000)
#: Queries timed per lake size and the answer size requested.
NUM_QUERIES = 30
TOP_K = 10
#: Worker processes used by the sharded end-to-end construction timing.
PARALLEL_WORKERS = 4
#: Columns per synthetic table in the end-to-end construction timing.
COLUMNS_PER_TABLE = 8
#: Tracked floor: table-level signature batching at 1000 attributes.
BATCHING_SPEEDUP_FLOOR = 3.0
#: Tracked floor: vectorized top-k query speedup at 1000 attributes.
QUERY_SPEEDUP_FLOOR = 5.0
#: Tracked floor: batched query engine vs sequential per-attribute querying
#: at 1000 attributes (rankings verified identical; sequential is the oracle).
BATCHED_QUERY_SPEEDUP_FLOOR = 3.0
#: Tracked floor: repeated-target querying through DiscoverySession (cache-warm
#: second sweep of the same targets) vs uncached query_batch on raw tables,
#: at 1000 attributes.  The session memoizes each target's Algorithm 1 profile
#: and query signatures, so the warm sweep skips re-profiling entirely.
SESSION_CACHE_SPEEDUP_FLOOR = 2.0
#: Tracked floor: batched SA-join graph construction (stored-signature probes,
#: shared per-tree forest passes, vectorized estimated-overlap pre-filter) vs
#: the scalar probe-at-a-time build, at 1000 attributes, with the edge sets
#: verified identical before any timing is trusted.
JOIN_GRAPH_SPEEDUP_FLOOR = 3.0
#: Tracked floor: fan-out snapshot shipping at 1000 attributes — the
#: shared-memory descriptor a query-worker pool ships per worker must be at
#: least this many times smaller than the pickled-index snapshot the old
#: fan-out shipped, with the attached state verified bit-identical first.
SNAPSHOT_SHIP_RATIO_FLOOR = 10.0
#: Tracked floor: incremental mutation at 1000 attributes — indexing one new
#: table into a built index (``D3LIndexes.add_table``) must be at least this
#: many times cheaper than rebuilding the whole index from scratch, with the
#: mutated index verified bit-identical to the rebuild before the timing is
#: trusted.
INCREMENTAL_ADD_SPEEDUP_FLOOR = 10.0
#: Lake size (attribute count) of the incremental-mutation benchmark.
MUTATION_BENCH_ATTRIBUTES = 1000
#: Join-graph workload shape: entity rows per table and the per-family entity
#: pool the tables sample them from (value samples near the profile cap, so
#: exact verification has realistic per-pair cost).
JOIN_BENCH_ROWS = 420
JOIN_BENCH_ENTITY_POOL = 520
#: Tables per subject-entity family in the join-graph workload (each family
#: becomes a clique of genuinely SA-joinable tables).
JOIN_BENCH_FAMILY_SIZE = 5
#: Batched-query workload: answer size, candidate pool, table shape, targets.
BATCH_QUERY_TOP_K = 25
BATCH_QUERY_MIN_CANDIDATES = 300
BATCH_QUERY_ROWS = 200
BATCH_QUERY_NUMERIC_COLUMNS = 2
BATCH_QUERY_TARGETS = 6
#: Rows per serving target in the session-cache benchmark.  Serving targets
#: are user tables, not lake tables; their Algorithm 1 profiling cost scales
#: with height while the per-query candidate work does not, so the session's
#: profile cache is exercised at a realistic serving-table size.
SESSION_TARGET_ROWS = 2000

RESULT_PATH = REPO_ROOT / "BENCH_hot_paths.json"


def _synthetic_attributes(count: int, seed: int) -> List[Tuple[str, set]]:
    """Token sets shaped like a lake: families of related attributes plus noise."""
    rng = random.Random(seed)
    num_families = max(4, count // 8)
    families = [
        {f"fam{f}-tok{t}" for t in range(40)} for f in range(num_families)
    ]
    attributes = []
    for index in range(count):
        base = families[rng.randrange(num_families)]
        kept = {token for token in base if rng.random() > 0.25}
        extra = {f"attr{index}-noise{j}" for j in range(rng.randrange(10))}
        attributes.append((f"attr{index}", kept | extra))
    return attributes


def _query_signatures(
    attributes: List[Tuple[str, set]], factory: MinHashFactory, seed: int
):
    """Perturbed versions of sampled attributes — realistic near-neighbor queries."""
    rng = random.Random(seed)
    sampled = rng.sample(attributes, k=min(NUM_QUERIES, len(attributes)))
    queries = []
    for name, tokens in sampled:
        kept = {token for token in tokens if rng.random() > 0.15}
        extra = {f"query-{name}-{j}" for j in range(3)}
        queries.append((name, factory.from_tokens(kept | extra)))
    return queries


def _time_indexing(forest_cls, signatures, probe) -> Tuple[float, object]:
    """Wall-clock to insert every signature and force the sorted structure."""
    start = time.perf_counter()
    forest = forest_cls(num_hashes=NUM_HASHES, num_trees=NUM_TREES)
    for key, values in signatures:
        forest.insert(key, values)
    forest.query(probe, 1)  # force the deferred sort, as the first query would
    return time.perf_counter() - start, forest


def _rank_vectorized(forest, matrix, row_of, query, k):
    candidates = forest.query(query.hashvalues, k)
    if not candidates:
        return []
    rows = np.array([row_of[key] for key in candidates], dtype=np.intp)
    distances = batch_jaccard_distances(query.hashvalues, matrix[rows])
    ranked = sorted(zip(distances.tolist(), candidates))
    return ranked[:k]


def _rank_scalar(forest, signatures_by_key, query, k):
    candidates = forest.query(query.hashvalues, k)
    ranked = sorted(
        (scalar_signature_distance(query, signatures_by_key[key]), key)
        for key in candidates
    )
    return ranked[:k]


def _time_queries(rank, queries, k) -> Tuple[float, List[list]]:
    rankings = []
    start = time.perf_counter()
    for _, query in queries:
        rankings.append(rank(query, k))
    elapsed = time.perf_counter() - start
    return elapsed / len(queries), rankings


def _bench_token_hashing(attributes, seed: int) -> Dict[str, float]:
    """Batched+cached hash_tokens vs the per-token scalar pass."""
    from repro.lsh.hashing import hash_tokens

    token_sets = [tokens for _, tokens in attributes]
    start = time.perf_counter()
    for tokens in token_sets:
        scalar_hash_tokens(tokens, seed=seed)
    scalar_seconds = time.perf_counter() - start
    clear_token_hash_cache()
    start = time.perf_counter()
    for tokens in token_sets:
        hash_tokens(tokens, seed=seed)
    vectorized_seconds = time.perf_counter() - start
    return {
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": scalar_seconds / max(vectorized_seconds, 1e-12),
    }


def _synthetic_lake(num_attributes: int, seed: int):
    """A DataLake of small textual tables totalling ``num_attributes`` columns."""
    from repro.lake.datalake import DataLake
    from repro.tables.table import Table

    rng = random.Random(seed)
    cities = ["belfast", "salford", "manchester", "bolton", "leeds", "york"]
    streets = ["church", "chapel", "station", "victoria", "market", "mill", "park"]
    tables = []
    num_tables = max(1, num_attributes // COLUMNS_PER_TABLE)
    for table_index in range(num_tables):
        columns = {}
        for column_index in range(COLUMNS_PER_TABLE):
            columns[f"col{column_index}_{rng.randrange(8)}"] = [
                f"{rng.randrange(99)} {rng.choice(streets)} st {rng.choice(cities)} {rng.randrange(200)}"
                for _ in range(80)
            ]
        tables.append(Table.from_dict(f"table{table_index:04d}", columns))
    return DataLake(f"bench{num_attributes}", tables)


def _bench_signature_batching(profiles, indexes) -> Dict[str, object]:
    """Per-attribute ``signatures_for`` vs lake-level ``batch_signatures``.

    This is the unit ``add_lake`` actually runs per build: all MinHash
    evidence types plus the random projections for every attribute of the
    lake.  Both paths run once to warm the shared token-hash cache, then the
    best of three timed repeats is kept; the signatures are compared for
    bit-identity before the timings are trusted.
    """
    from repro.core.evidence import EvidenceType

    def run_scalar():
        return {
            (table_profile.table_name, name): indexes.signatures_for(attribute_profile)
            for table_profile in profiles
            for name, attribute_profile in table_profile.attributes.items()
        }

    def run_batched():
        return indexes.batch_signatures(profiles)

    scalar_signatures = run_scalar()
    batched_signatures = run_batched()
    scalar_seconds = min(
        _timed(run_scalar) for _ in range(3)
    )
    batched_seconds = min(
        _timed(run_batched) for _ in range(3)
    )

    identical = True
    for (table_name, name), scalar in scalar_signatures.items():
        batched = batched_signatures[table_name][name]
        for evidence in EvidenceType.indexed():
            left, right = scalar[evidence], batched[evidence]
            if (left is None) != (right is None) or (left is not None and left != right):
                identical = False
    attributes = len(scalar_signatures)
    return {
        "num_attributes": attributes,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "scalar_attrs_per_second": attributes / max(scalar_seconds, 1e-12),
        "batched_attrs_per_second": attributes / max(batched_seconds, 1e-12),
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "signatures_identical": identical,
    }


def _timed(callable_) -> float:
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start


def _rss_bytes() -> int:
    """Resident set size of this process via ``/proc/self/statm`` (no psutil)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def _worker_index_footprint(payload) -> Tuple[int, int]:
    """Worker entry: materialize an index from ``payload``, report RSS growth.

    ``payload`` is ``("blob", pickled-index bytes)`` — the old fan-out's
    per-worker copy, unpickled here so the allocation lands inside the
    measurement — or a shared-snapshot descriptor, attached zero-copy.
    Returns ``(rss delta in bytes, attribute count)``.
    """
    import pickle

    from repro.core.shared import SharedIndexSnapshot

    kind, data = payload
    before = _rss_bytes()
    if kind == "blob":
        indexes = pickle.loads(data)
    else:
        indexes = SharedIndexSnapshot.attach((kind, data))
    return _rss_bytes() - before, indexes.attribute_count


def _snapshot_state_identical(indexes, attached) -> bool:
    """Bit-exact equality of an attached snapshot against the source index."""
    from repro.core.evidence import EvidenceType

    for evidence in EvidenceType.indexed():
        refs, matrix, flags = indexes._matrices[evidence].export_state(copy=False)
        a_refs, a_matrix, a_flags = attached._matrices[evidence].export_state(
            copy=False
        )
        if (
            refs != a_refs
            or not np.array_equal(matrix, a_matrix)
            or not np.array_equal(flags, a_flags)
        ):
            return False
        forest = indexes._forests[evidence].export_state(copy=False)
        a_forest = attached._forests[evidence].export_state(copy=False)
        for tree, a_tree in zip(forest["trees"], a_forest["trees"]):
            if (
                not np.array_equal(tree["keys"], a_tree["keys"])
                or tree["items"] != a_tree["items"]
            ):
                return False
    return True


def _bench_snapshot_shipping(indexes) -> Dict[str, object]:
    """Fan-out snapshot cost: pickled per-worker copies vs shared-memory attach.

    Measures what one worker costs under each shipping strategy — bytes
    serialized into the pool initializer and the worker's RSS growth while
    materializing its index — plus the one-time snapshot create/attach
    wall-clock, with the attached state verified bit-identical to the source
    before any number is trusted.  The worker footprints run in fresh
    single-worker pools *before* the in-process attach so the fork cannot
    inherit an already-attached mapping.
    """
    import pickle
    from concurrent.futures import ProcessPoolExecutor

    from repro.core.shared import SharedIndexSnapshot

    start = time.perf_counter()
    blob = pickle.dumps(indexes, protocol=pickle.HIGHEST_PROTOCOL)
    pickle_seconds = time.perf_counter() - start

    start = time.perf_counter()
    snapshot = SharedIndexSnapshot.create(indexes)
    create_seconds = time.perf_counter() - start
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            rss_pickled, _ = pool.submit(
                _worker_index_footprint, ("blob", blob)
            ).result()
        with ProcessPoolExecutor(max_workers=1) as pool:
            rss_shared, _ = pool.submit(
                _worker_index_footprint, snapshot.descriptor
            ).result()

        start = time.perf_counter()
        attached = SharedIndexSnapshot.attach(snapshot.descriptor)
        attach_seconds = time.perf_counter() - start
        state_identical = _snapshot_state_identical(indexes, attached)

        shipped = snapshot.shipped_bytes()
        return {
            "snapshot_pickled_bytes": len(blob),
            "snapshot_shipped_bytes": shipped,
            "snapshot_ship_ratio": len(blob) / max(shipped, 1),
            "snapshot_pickle_seconds": pickle_seconds,
            "snapshot_create_seconds": create_seconds,
            "snapshot_attach_seconds": attach_seconds,
            "worker_rss_delta_pickled_bytes": rss_pickled,
            "worker_rss_delta_shared_bytes": rss_shared,
            "snapshot_state_identical": state_identical,
        }
    finally:
        snapshot.close()


def _bench_end_to_end_construction(lake, config) -> Dict[str, object]:
    """Full ``add_lake`` (profile + sign + insert) with 1 vs N worker processes."""
    from repro.core.indexes import D3LIndexes

    timings = {}
    serial_indexes = None
    for workers in (1, PARALLEL_WORKERS):
        clear_token_hash_cache()
        indexes = D3LIndexes(config=config)
        start = time.perf_counter()
        indexes.add_lake(lake, workers=workers)
        elapsed = time.perf_counter() - start
        timings[workers] = (elapsed, indexes.attribute_count)
        if workers == 1:
            serial_indexes = indexes
    serial_seconds, attributes = timings[1]
    parallel_seconds, _ = timings[PARALLEL_WORKERS]
    return {
        "num_tables": len(lake),
        "num_attributes": attributes,
        "available_cpus": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_workers": PARALLEL_WORKERS,
        "serial_attrs_per_second": attributes / max(serial_seconds, 1e-12),
        "parallel_attrs_per_second": attributes / max(parallel_seconds, 1e-12),
        "parallel_speedup": serial_seconds / max(parallel_seconds, 1e-12),
        **_bench_snapshot_shipping(serial_indexes),
    }


def _mixed_query_lake(num_attributes: int, seed: int):
    """A lake mixing family-correlated numeric columns with textual columns.

    Shaped to stress the query fan-out the way the paper's lakes do: shared
    attribute names link tables across the lake (so candidate pools are
    large) and the numeric columns of a family share a distribution (so the
    Algorithm 2 guard passes and the KS pass has real work per candidate).
    """
    from repro.lake.datalake import DataLake
    from repro.tables.table import Table

    rng = random.Random(seed)
    numeric_names = ["amount", "price", "total", "score", "count", "rate"]
    text_names = ["address", "venue", "location", "site", "region", "name"]
    cities = ["belfast", "salford", "manchester", "bolton", "leeds", "york"]
    streets = ["church", "chapel", "station", "victoria", "market", "mill", "park"]
    tables = []
    for table_index in range(max(1, num_attributes // COLUMNS_PER_TABLE)):
        family = table_index % 7
        columns = {}
        for column_index in range(BATCH_QUERY_NUMERIC_COLUMNS):
            columns[numeric_names[column_index]] = [
                round(rng.gauss(10 * family + column_index, 3.0), 3)
                for _ in range(BATCH_QUERY_ROWS)
            ]
        for column_index in range(COLUMNS_PER_TABLE - BATCH_QUERY_NUMERIC_COLUMNS):
            columns[text_names[column_index]] = [
                f"{rng.randrange(99)} {rng.choice(streets)} st {rng.choice(cities)}"
                for _ in range(BATCH_QUERY_ROWS)
            ]
        tables.append(Table.from_dict(f"table{table_index:04d}", columns))
    return DataLake(f"query_bench{num_attributes}", tables)


def _rankings(answer) -> List[Tuple[str, float]]:
    return [(result.table_name, result.distance) for result in answer.results]


def _bench_batched_query(count: int, seed: int) -> Dict[str, object]:
    """Sequential per-attribute querying (the oracle) vs the batched engine.

    Both paths receive pre-profiled targets, so the timing isolates the
    query fan-out: candidate collection, distance computation, the Algorithm
    2 KS pass, Equation 2 weighting, and ranking.  Full rankings (names and
    combined distances) are verified identical before any timing is trusted,
    and the process-parallel fan-out (``workers=PARALLEL_WORKERS``) is
    checked against ``workers=1`` the same way.
    """
    from repro.core.config import D3LConfig
    from repro.core.discovery import D3L

    lake = _mixed_query_lake(count, seed)
    config = D3LConfig(
        num_hashes=NUM_HASHES,
        num_trees=NUM_TREES,
        embedding_dimension=32,
        min_candidates=BATCH_QUERY_MIN_CANDIDATES,
    )
    engine = D3L(config=config)
    engine.index_lake(lake)
    rng = random.Random(seed + 1)
    target_names = rng.sample(
        sorted(lake.table_names), k=min(BATCH_QUERY_TARGETS, len(lake))
    )
    profiles = [engine.profile_target(lake.table(name)) for name in target_names]

    k = BATCH_QUERY_TOP_K
    engine.query(profiles[0], k=k)
    engine.query_batch(profiles[0], k=k)

    start = time.perf_counter()
    sequential = [engine.query(profile, k=k) for profile in profiles]
    sequential_seconds = (time.perf_counter() - start) / len(profiles)
    start = time.perf_counter()
    batched = [engine.query_batch(profile, k=k) for profile in profiles]
    batched_seconds = (time.perf_counter() - start) / len(profiles)

    rankings_identical = all(
        _rankings(first) == _rankings(second)
        for first, second in zip(sequential, batched)
    )
    workers_identical = all(
        _rankings(engine.query_batch(profile, k=k, workers=PARALLEL_WORKERS))
        == _rankings(answer)
        for profile, answer in zip(profiles[:2], batched[:2])
    )
    return {
        "num_attributes": engine.indexes.attribute_count,
        "num_targets": len(profiles),
        "top_k": k,
        "candidate_pool": config.candidate_pool_size(k),
        "sequential_seconds_per_query": sequential_seconds,
        "batched_seconds_per_query": batched_seconds,
        "speedup": sequential_seconds / max(batched_seconds, 1e-12),
        "rankings_identical": rankings_identical,
        "parallel_workers": PARALLEL_WORKERS,
        "workers_rankings_identical": workers_identical,
    }


def _serving_targets(num_targets: int, seed: int):
    """User-style serving targets: the lake's column vocabulary, more rows.

    Shaped like the tables of :func:`_mixed_query_lake` (shared attribute
    names, family-correlated numeric columns) but ``SESSION_TARGET_ROWS``
    tall, the way analyst-supplied targets are: profiling cost grows with
    height, candidate pools do not.
    """
    from repro.tables.table import Table

    rng = random.Random(seed)
    numeric_names = ["amount", "price", "total", "score", "count", "rate"]
    text_names = ["address", "venue", "location", "site", "region", "name"]
    cities = ["belfast", "salford", "manchester", "bolton", "leeds", "york"]
    streets = ["church", "chapel", "station", "victoria", "market", "mill", "park"]
    targets = []
    for target_index in range(num_targets):
        family = target_index % 7
        columns = {}
        for column_index in range(BATCH_QUERY_NUMERIC_COLUMNS):
            columns[numeric_names[column_index]] = [
                round(rng.gauss(10 * family + column_index, 3.0), 3)
                for _ in range(SESSION_TARGET_ROWS)
            ]
        for column_index in range(COLUMNS_PER_TABLE - BATCH_QUERY_NUMERIC_COLUMNS):
            columns[text_names[column_index]] = [
                f"{rng.randrange(99)} {rng.choice(streets)} st {rng.choice(cities)}"
                for _ in range(SESSION_TARGET_ROWS)
            ]
        targets.append(Table.from_dict(f"serving_target{target_index:02d}", columns))
    return targets


def _bench_session_cache(count: int, seed: int) -> Dict[str, object]:
    """Repeated-target serving: DiscoverySession vs uncached ``query_batch``.

    A serving tier answers the same targets over and over (dashboards,
    answer-size sweeps, evidence ablations).  Serving-sized target tables
    are queried through the deprecated uncached path — which re-profiles and
    re-signs the target on every call — and through a
    :class:`DiscoverySession`, twice; the second (cache-warm) sweep must
    beat the uncached path by ``SESSION_CACHE_SPEEDUP_FLOOR`` and produce
    bit-identical rankings.
    """
    import warnings

    from repro.core.api import DiscoverySession, QueryRequest
    from repro.core.config import D3LConfig
    from repro.core.discovery import D3L

    lake = _mixed_query_lake(count, seed)
    config = D3LConfig(
        num_hashes=NUM_HASHES,
        num_trees=NUM_TREES,
        embedding_dimension=32,
        min_candidates=BATCH_QUERY_MIN_CANDIDATES,
    )
    engine = D3L(config=config)
    engine.index_lake(lake)
    targets = _serving_targets(BATCH_QUERY_TARGETS, seed + 1)
    k = BATCH_QUERY_TOP_K

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        engine.query_batch(targets[0], k=k)  # warm code paths + token caches

        start = time.perf_counter()
        uncached = [engine.query_batch(target, k=k) for target in targets]
        uncached_seconds = (time.perf_counter() - start) / len(targets)

    session = DiscoverySession(engine)
    start = time.perf_counter()
    first = [session.submit(QueryRequest(target=target, k=k)) for target in targets]
    first_seconds = (time.perf_counter() - start) / len(targets)
    start = time.perf_counter()
    second = [session.submit(QueryRequest(target=target, k=k)) for target in targets]
    second_seconds = (time.perf_counter() - start) / len(targets)

    identical = all(
        _rankings(answer) == [(r.table_name, r.distance) for r in response.results]
        for answer, response in zip(uncached, second)
    ) and all(
        [(r.table_name, r.distance) for r in cold.results]
        == [(r.table_name, r.distance) for r in warm.results]
        for cold, warm in zip(first, second)
    )
    cache = session.cache_info()
    return {
        "num_attributes": engine.indexes.attribute_count,
        "num_targets": len(targets),
        "top_k": k,
        "uncached_seconds_per_query": uncached_seconds,
        "session_cold_seconds_per_query": first_seconds,
        "session_warm_seconds_per_query": second_seconds,
        "cache_speedup": uncached_seconds / max(second_seconds, 1e-12),
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "rankings_identical": identical,
    }


def _join_lake(num_attributes: int, seed: int):
    """A lake whose tables form per-family SA-join cliques.

    Every table's leftmost column holds entity names sampled from its
    family's pool (high distinctness, so the subject-attribute heuristic
    picks it), making same-family tables genuinely SA-joinable with value
    overlaps above the default τ = 0.7; entity tokens are family-unique so
    cross-family candidates are junk the pre-filter must reject.  The
    remaining columns are the usual mixed numeric/text filler sharing a
    global vocabulary, which keeps the value index busy with non-subject
    attributes the way a real lake is.
    """
    from repro.lake.datalake import DataLake
    from repro.tables.table import Table

    rng = random.Random(seed)
    cities = ["belfast", "salford", "manchester", "bolton", "leeds", "york"]
    streets = ["church", "chapel", "station", "victoria", "market", "mill", "park"]
    num_tables = max(1, num_attributes // COLUMNS_PER_TABLE)
    num_families = max(2, num_tables // JOIN_BENCH_FAMILY_SIZE)
    pools = [
        [f"fam{family}x{i:04d} clinic" for i in range(JOIN_BENCH_ENTITY_POOL)]
        for family in range(num_families)
    ]
    tables = []
    for table_index in range(num_tables):
        family = table_index % num_families
        columns = {"entity": rng.sample(pools[family], k=JOIN_BENCH_ROWS)}
        for column_index in range(2):
            columns[f"metric{column_index}"] = [
                round(rng.gauss(10 * family, 3.0), 3) for _ in range(JOIN_BENCH_ROWS)
            ]
        for column_index in range(COLUMNS_PER_TABLE - 3):
            columns[f"text{column_index}"] = [
                f"{rng.randrange(99)} {rng.choice(streets)} st {rng.choice(cities)}"
                for _ in range(JOIN_BENCH_ROWS)
            ]
        tables.append(Table.from_dict(f"join{table_index:04d}", columns))
    return DataLake(f"join_bench{num_attributes}", tables)


def _join_edge_set(graph) -> Dict[tuple, tuple]:
    """Canonical edge map of an SA-join graph, for exact set comparison."""
    return {
        tuple(sorted(pair)): (
            graph.edge(*pair).left,
            graph.edge(*pair).right,
            graph.edge(*pair).overlap,
        )
        for pair in graph.graph.edges
    }


def _bench_join_graph_build(count: int, seed: int) -> Dict[str, object]:
    """Batched SA-join graph construction vs the scalar probe-at-a-time build.

    Both paths block with the same ``join_candidate_pool`` value-index
    lookups; the batched path additionally reuses the stored probe
    signatures, shares the forest descents across probes
    (``LSHForest.multi_query``), and drops junk pairs with the vectorized
    estimated-overlap pre-filter before exact verification.  Edge sets are
    verified identical — batched vs sequential, and ``workers=1`` vs the
    ``workers=PARALLEL_WORKERS`` sharded verification — before any timing is
    trusted.
    """
    from repro.core.config import D3LConfig
    from repro.core.discovery import D3L
    from repro.core.joins import SAJoinGraph

    lake = _join_lake(count, seed)
    config = D3LConfig(num_hashes=NUM_HASHES, num_trees=NUM_TREES, embedding_dimension=32)
    engine = D3L(config=config)
    engine.index_lake(lake)
    indexes = engine.indexes

    batched = SAJoinGraph.build(indexes, config)
    sequential = SAJoinGraph.build_sequential(indexes, config)
    sharded = SAJoinGraph.build(indexes, config, workers=PARALLEL_WORKERS)
    edges_identical = _join_edge_set(batched) == _join_edge_set(sequential)
    workers_identical = _join_edge_set(batched) == _join_edge_set(sharded)

    sequential_seconds = min(
        _timed(lambda: SAJoinGraph.build_sequential(indexes, config)) for _ in range(3)
    )
    batched_seconds = min(
        _timed(lambda: SAJoinGraph.build(indexes, config)) for _ in range(3)
    )
    return {
        "num_tables": len(lake),
        "num_attributes": indexes.attribute_count,
        "num_edges": batched.edge_count(),
        "candidate_pool": config.join_candidate_pool,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": sequential_seconds / max(batched_seconds, 1e-12),
        "edges_identical": edges_identical,
        "parallel_workers": PARALLEL_WORKERS,
        "workers_edges_identical": workers_identical,
    }


def _mutation_state_identical(expected, mutated) -> bool:
    """The mutated index equals ``expected`` up to matrix row order.

    Matrix row order is answer-neutral (every consumer goes through the
    ref↔row registry) and legitimately differs between ``add_lake`` and a
    sequence of per-table adds, so the rows are compared per ref; the
    compacted forests use the canonical layout — a pure function of their
    contents — and must match bit for bit.
    """
    from repro.core.evidence import EvidenceType

    if sorted(expected.profiles) != sorted(mutated.profiles):
        return False
    if sorted(expected.table_profiles) != sorted(mutated.table_profiles):
        return False
    for evidence in EvidenceType.indexed():
        def rows_by_ref(indexes):
            refs, matrix, flags = indexes._matrices[evidence].export_state(copy=False)
            return {
                ref: (matrix[row].tobytes(), bool(flags[row]))
                for row, ref in enumerate(refs)
            }

        if rows_by_ref(expected) != rows_by_ref(mutated):
            return False
        forest = expected._forests[evidence].export_state(copy=False)
        mutated_forest = mutated._forests[evidence].export_state(copy=False)
        for tree, mutated_tree in zip(forest["trees"], mutated_forest["trees"]):
            if (
                not np.array_equal(tree["keys"], mutated_tree["keys"])
                or tree["items"] != mutated_tree["items"]
            ):
                return False
    return True


def bench_incremental_mutation(
    count: int = MUTATION_BENCH_ATTRIBUTES, seed: int = 7
) -> Dict[str, object]:
    """Single-table mutation vs a full rebuild at ``count`` attributes.

    Times what adding one table to an already-built index costs —
    ``D3LIndexes.add_table`` profiles, signs, and inserts just that table's
    attributes and journals the mutation — against rebuilding the whole
    index over the lake *plus* that table, which is what every mutation used
    to cost before the incremental path existed.  The mutated index is
    verified identical to the from-scratch rebuild — per-ref matrix rows,
    canonical forest layouts, profiles (:func:`_mutation_state_identical`) —
    before either timing is trusted, and the single-table removal
    is timed alongside for the record.  The token-hash cache is cleared
    before every timed run so neither path rides the other's warm cache.
    """
    from repro.core.config import D3LConfig
    from repro.core.indexes import D3LIndexes
    from repro.lake.datalake import DataLake

    lake = _synthetic_lake(count, seed)
    extra = _synthetic_lake(COLUMNS_PER_TABLE, seed + 1).tables[0].with_name(
        "mutation_extra"
    )
    config = D3LConfig(num_hashes=NUM_HASHES, num_trees=NUM_TREES, embedding_dimension=32)

    clear_token_hash_cache()
    full_indexes = D3LIndexes(config=config)
    full_lake = DataLake(f"{lake.name}+1", list(lake) + [extra])
    full_rebuild_seconds = _timed(lambda: full_indexes.add_lake(full_lake))

    clear_token_hash_cache()
    base_indexes = D3LIndexes(config=config)
    base_indexes.add_lake(lake)
    add_timings = []
    remove_timings = []
    for _ in range(3):
        clear_token_hash_cache()
        add_timings.append(_timed(lambda: base_indexes.add_table(extra)))
        remove_timings.append(_timed(lambda: base_indexes.remove_table(extra.name)))
    clear_token_hash_cache()
    add_timings.append(_timed(lambda: base_indexes.add_table(extra)))
    single_add_seconds = min(add_timings)
    single_remove_seconds = min(remove_timings)

    state_identical = _mutation_state_identical(full_indexes, base_indexes)
    return {
        "num_attributes": base_indexes.attribute_count,
        "num_tables": len(full_lake),
        "full_rebuild_seconds": full_rebuild_seconds,
        "single_add_seconds": single_add_seconds,
        "single_remove_seconds": single_remove_seconds,
        "speedup": full_rebuild_seconds / max(single_add_seconds, 1e-12),
        "state_identical": state_identical,
    }


def _bench_index_construction(count: int, seed: int) -> Dict[str, object]:
    """Signature batching plus end-to-end sharded construction on one lake."""
    from repro.core.config import D3LConfig
    from repro.core.indexes import D3LIndexes

    lake = _synthetic_lake(count, seed)
    config = D3LConfig(num_hashes=NUM_HASHES, num_trees=NUM_TREES, embedding_dimension=32)
    indexes = D3LIndexes(config=config)
    profiles = [indexes.profile_table(table) for table in lake]
    return {
        "signature_batching": _bench_signature_batching(profiles, indexes),
        "end_to_end": _bench_end_to_end_construction(lake, config),
    }


def bench_lake_size(count: int, seed: int = 7) -> Dict[str, object]:
    factory = MinHashFactory(num_perm=NUM_HASHES, seed=3)
    attributes = _synthetic_attributes(count, seed)
    minhashes = [(key, factory.from_tokens(tokens)) for key, tokens in attributes]
    signatures = [(key, signature.hashvalues) for key, signature in minhashes]
    signatures_by_key = dict(minhashes)
    queries = _query_signatures(attributes, factory, seed + 1)
    probe = queries[0][1].hashvalues

    vec_index_seconds, vec_forest = _time_indexing(LSHForest, signatures, probe)
    scalar_index_seconds, scalar_forest = _time_indexing(
        ScalarLSHForest, signatures, probe
    )

    matrix = np.vstack([values for _, values in signatures])
    row_of = {key: row for row, (key, _) in enumerate(signatures)}

    vec_query_seconds, vec_rankings = _time_queries(
        lambda query, k: _rank_vectorized(vec_forest, matrix, row_of, query, k),
        queries,
        TOP_K,
    )
    scalar_query_seconds, scalar_rankings = _time_queries(
        lambda query, k: _rank_scalar(scalar_forest, signatures_by_key, query, k),
        queries,
        TOP_K,
    )

    rankings_identical = vec_rankings == scalar_rankings
    return {
        "num_attributes": count,
        "num_queries": len(queries),
        "top_k": TOP_K,
        "index_seconds": {
            "vectorized": vec_index_seconds,
            "scalar": scalar_index_seconds,
            "speedup": scalar_index_seconds / max(vec_index_seconds, 1e-12),
        },
        "query_seconds_per_query": {
            "vectorized": vec_query_seconds,
            "scalar": scalar_query_seconds,
            "speedup": scalar_query_seconds / max(vec_query_seconds, 1e-12),
        },
        "token_hashing": _bench_token_hashing(attributes, seed=3),
        "index_construction": _bench_index_construction(count, seed + 2),
        "batched_query": _bench_batched_query(count, seed + 3),
        "session_cache": _bench_session_cache(count, seed + 4),
        "join_graph_build": _bench_join_graph_build(count, seed + 5),
        "rankings_identical": rankings_identical,
    }


def run(sizes=LAKE_SIZES) -> Dict[str, object]:
    results = [bench_lake_size(size) for size in sizes]
    payload = {
        "benchmark": "hot_paths",
        "generated_by": "benchmarks/bench_perf_hot_paths.py",
        "config": {
            "num_hashes": NUM_HASHES,
            "num_trees": NUM_TREES,
            "num_queries": NUM_QUERIES,
            "top_k": TOP_K,
        },
        "lake_sizes": list(sizes),
        "results": results,
        "incremental_mutation": bench_incremental_mutation(),
    }
    return payload


def main() -> int:
    payload = run()
    # The serving-tier section is written by bench_serving.py; keep it when
    # rewriting the file so the two benchmarks can re-run independently.
    if RESULT_PATH.exists():
        try:
            previous = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            previous = {}
        if "serving" in previous:
            payload["serving"] = previous["serving"]
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for entry in payload["results"]:
        construction = entry["index_construction"]
        batching = construction["signature_batching"]
        end_to_end = construction["end_to_end"]
        batched_query = entry["batched_query"]
        session_cache = entry["session_cache"]
        join_graph = entry["join_graph_build"]
        print(
            f"n={entry['num_attributes']:>5}  "
            f"index: {entry['index_seconds']['speedup']:.1f}x  "
            f"query: {entry['query_seconds_per_query']['speedup']:.1f}x  "
            f"sig-batch: {batching['speedup']:.1f}x  "
            f"batch-query: {batched_query['speedup']:.1f}x  "
            f"session-cache: {session_cache['cache_speedup']:.1f}x  "
            f"join-graph: {join_graph['speedup']:.1f}x  "
            f"e2e: {end_to_end['serial_attrs_per_second']:.0f} attrs/s serial, "
            f"{end_to_end['parallel_attrs_per_second']:.0f} attrs/s "
            f"x{end_to_end['parallel_workers']}  "
            f"snap-ship: {end_to_end['snapshot_ship_ratio']:.0f}x smaller  "
            f"identical: "
            f"{entry['rankings_identical'] and batching['signatures_identical'] and batched_query['rankings_identical'] and batched_query['workers_rankings_identical'] and session_cache['rankings_identical'] and join_graph['edges_identical'] and join_graph['workers_edges_identical'] and end_to_end['snapshot_state_identical']}"
        )
    mutation = payload["incremental_mutation"]
    print(
        f"mutation n={mutation['num_attributes']:>5}  "
        f"single add: {mutation['single_add_seconds'] * 1000:.1f}ms  "
        f"full rebuild: {mutation['full_rebuild_seconds'] * 1000:.0f}ms  "
        f"speedup: {mutation['speedup']:.0f}x  "
        f"identical: {mutation['state_identical']}"
    )
    print(f"wrote {RESULT_PATH}")
    failures = [
        entry["num_attributes"]
        for entry in payload["results"]
        if not entry["rankings_identical"]
        or not entry["index_construction"]["signature_batching"]["signatures_identical"]
        or not entry["batched_query"]["rankings_identical"]
        or not entry["batched_query"]["workers_rankings_identical"]
        or not entry["session_cache"]["rankings_identical"]
        or not entry["join_graph_build"]["edges_identical"]
        or not entry["join_graph_build"]["workers_edges_identical"]
        or not entry["index_construction"]["end_to_end"]["snapshot_state_identical"]
    ]
    largest = payload["results"][-1]
    batching_speedup = largest["index_construction"]["signature_batching"]["speedup"]
    if batching_speedup < BATCHING_SPEEDUP_FLOOR:
        print(
            f"FLOOR VIOLATION: signature batching {batching_speedup:.1f}x "
            f"< {BATCHING_SPEEDUP_FLOOR}x at {largest['num_attributes']} attributes"
        )
        failures.append(largest["num_attributes"])
    query_speedup = largest["query_seconds_per_query"]["speedup"]
    if query_speedup < QUERY_SPEEDUP_FLOOR:
        print(
            f"FLOOR VIOLATION: query speedup {query_speedup:.1f}x "
            f"< {QUERY_SPEEDUP_FLOOR}x at {largest['num_attributes']} attributes"
        )
        failures.append(largest["num_attributes"])
    batched_query_speedup = largest["batched_query"]["speedup"]
    if batched_query_speedup < BATCHED_QUERY_SPEEDUP_FLOOR:
        print(
            f"FLOOR VIOLATION: batched query speedup {batched_query_speedup:.1f}x "
            f"< {BATCHED_QUERY_SPEEDUP_FLOOR}x at {largest['num_attributes']} attributes"
        )
        failures.append(largest["num_attributes"])
    session_speedup = largest["session_cache"]["cache_speedup"]
    if session_speedup < SESSION_CACHE_SPEEDUP_FLOOR:
        print(
            f"FLOOR VIOLATION: session cache speedup {session_speedup:.1f}x "
            f"< {SESSION_CACHE_SPEEDUP_FLOOR}x at {largest['num_attributes']} attributes"
        )
        failures.append(largest["num_attributes"])
    join_speedup = largest["join_graph_build"]["speedup"]
    if join_speedup < JOIN_GRAPH_SPEEDUP_FLOOR:
        print(
            f"FLOOR VIOLATION: join graph build speedup {join_speedup:.1f}x "
            f"< {JOIN_GRAPH_SPEEDUP_FLOOR}x at {largest['num_attributes']} attributes"
        )
        failures.append(largest["num_attributes"])
    ship_ratio = largest["index_construction"]["end_to_end"]["snapshot_ship_ratio"]
    if ship_ratio < SNAPSHOT_SHIP_RATIO_FLOOR:
        print(
            f"FLOOR VIOLATION: shared snapshot ships only {ship_ratio:.1f}x "
            f"fewer bytes than the pickled snapshot "
            f"(< {SNAPSHOT_SHIP_RATIO_FLOOR}x) at {largest['num_attributes']} attributes"
        )
        failures.append(largest["num_attributes"])
    if not mutation["state_identical"]:
        print(
            "FLOOR VIOLATION: incrementally mutated index diverges from the "
            f"from-scratch rebuild at {mutation['num_attributes']} attributes"
        )
        failures.append(mutation["num_attributes"])
    if mutation["speedup"] < INCREMENTAL_ADD_SPEEDUP_FLOOR:
        print(
            f"FLOOR VIOLATION: single-table add only {mutation['speedup']:.1f}x "
            f"cheaper than a full rebuild (< {INCREMENTAL_ADD_SPEEDUP_FLOOR}x) "
            f"at {mutation['num_attributes']} attributes"
        )
        failures.append(mutation["num_attributes"])
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
