"""The Synthetic corpus: lake tables derived from base tables.

Follows the derivation procedure of the TUS benchmark used in the paper:
every lake table is obtained from one of the base tables by a random
projection (a subset of its columns) and a random selection (a subset of its
rows).  The ground truth is recorded during derivation: tables derived from
the same base table are related, and attributes projected from the same base
column carry the base column's semantic domain.

Because derived tables copy base-table values verbatim, value overlap between
related tables is high and representations are consistent — the regime in
which the paper notes that all systems (including the value-equality-based
baselines) perform comparatively well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datagen.base_tables import (
    BaseTable,
    BaseTableSpec,
    build_base_tables,
    default_base_specs,
    spread_specs_by_topic,
)
from repro.datagen.corpus import Benchmark
from repro.datagen.ground_truth import GroundTruth
from repro.datagen.vocab import Vocabulary, default_vocabulary
from repro.lake.datalake import DataLake
from repro.tables.table import Table


@dataclass
class SyntheticBenchmarkConfig:
    """Parameters of the Synthetic corpus generator.

    The defaults generate a laptop-scale corpus (a few hundred tables); the
    efficiency benchmarks scale ``tables_per_base`` and ``num_base_tables``
    up to produce larger lakes.
    """

    num_base_tables: int = 16
    tables_per_base: int = 12
    base_rows: int = 200
    min_columns: int = 3
    min_rows: int = 30
    max_rows: int = 150
    subject_retention: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_base_tables <= 0 or self.tables_per_base <= 0:
            raise ValueError("table counts must be positive")
        if self.min_columns < 1:
            raise ValueError("min_columns must be at least 1")
        if not 0 < self.min_rows <= self.max_rows <= self.base_rows:
            raise ValueError("row bounds must satisfy 0 < min_rows <= max_rows <= base_rows")
        if not 0.0 <= self.subject_retention <= 1.0:
            raise ValueError("subject_retention must be in [0, 1]")


def _derive_table(
    base: BaseTable,
    index: int,
    config: SyntheticBenchmarkConfig,
    rng: np.random.Generator,
) -> Table:
    """One random projection + selection of a base table."""
    column_names = base.table.column_names
    max_columns = len(column_names)
    num_columns = int(rng.integers(config.min_columns, max_columns + 1))
    chosen = list(rng.choice(max_columns, size=num_columns, replace=False))
    chosen_names = [column_names[i] for i in sorted(chosen)]
    # Usually keep the subject attribute so the derived table stays about the
    # same entities (mirroring how open-data extracts retain the key column).
    if base.subject_attribute not in chosen_names and rng.random() < config.subject_retention:
        chosen_names = [base.subject_attribute] + chosen_names

    num_rows = int(rng.integers(config.min_rows, config.max_rows + 1))
    num_rows = min(num_rows, base.table.cardinality)
    row_indices = sorted(rng.choice(base.table.cardinality, size=num_rows, replace=False))

    derived_name = f"{base.spec.name}_{index:03d}"
    projected = base.table.select_columns(chosen_names, name=derived_name)
    return projected.take_rows(list(row_indices), name=derived_name)


def generate_synthetic_benchmark(
    config: Optional[SyntheticBenchmarkConfig] = None,
    vocabulary: Optional[Vocabulary] = None,
    specs: Optional[Sequence[BaseTableSpec]] = None,
) -> Benchmark:
    """Generate the Synthetic corpus with its ground truth."""
    config = config or SyntheticBenchmarkConfig()
    vocabulary = vocabulary or default_vocabulary()
    specs = list(specs) if specs is not None else default_base_specs()
    specs = spread_specs_by_topic(specs, config.num_base_tables)

    rng = np.random.default_rng(config.seed)
    base_tables = build_base_tables(specs, vocabulary, rows=config.base_rows, seed=config.seed)

    lake = DataLake("synthetic")
    ground_truth = GroundTruth()
    for base in base_tables:
        derived_names: List[str] = []
        for index in range(config.tables_per_base):
            derived = _derive_table(base, index, config, rng)
            lake.add_table(derived)
            derived_names.append(derived.name)
            attribute_domains = {
                column_name: base.column_domains[column_name]
                for column_name in derived.column_names
            }
            subject = (
                base.subject_attribute
                if base.subject_attribute in derived.column_names
                else None
            )
            ground_truth.add_table(derived.name, attribute_domains, subject_attribute=subject)
        ground_truth.mark_group_related(derived_names)

    return Benchmark(
        name="synthetic",
        lake=lake,
        ground_truth=ground_truth,
        vocabulary=vocabulary,
    )
