"""Rule registry, violations, and suppression pragmas for ``repro check``.

A rule is a function from one parsed module to an iterable of
:class:`Violation`, registered with a code (``R1``–``R5``), a short name,
and the ``fnmatch`` module patterns it is scoped to.  The checker
(:mod:`repro.analysis.checker`) walks a file tree, parses each module once,
and runs every rule whose patterns match the module path.

Suppression: a ``# repro-check: disable=R2`` comment suppresses that rule's
findings on its own line (``disable=R2,R3`` for several, bare ``disable``
for all).  The same pragma in a header comment — before the first statement
of the module — suppresses file-wide.  Suppressions are deliberate,
reviewable escape hatches; the pragma line itself documents the exception.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``# repro-check: disable`` / ``disable=R1,R2`` comment syntax.
_PRAGMA = re.compile(r"#\s*repro-check:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?")


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a file and line."""

    code: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _parse_pragmas(source: str) -> Dict[int, Optional[Set[str]]]:
    """``line -> codes`` disabled by pragma comments (``None`` = all codes).

    Tolerates files tokenize cannot fully process (the AST parse is the
    authoritative gate); pragmas found up to the error still apply.
    """
    pragmas: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            codes = match.group("codes")
            if codes is None:
                pragmas[token.start[0]] = None
            else:
                parsed = {code.strip().upper() for code in codes.split(",") if code.strip()}
                existing = pragmas.get(token.start[0], set())
                if existing is None or parsed == set():
                    pragmas[token.start[0]] = None
                else:
                    pragmas[token.start[0]] = existing | parsed
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        pass
    return pragmas


@dataclass
class ModuleUnderCheck:
    """One parsed module plus everything rules need to inspect it."""

    path: str  # absolute posix path (pattern-matched by suffix)
    display_path: str  # what violations print
    source: str
    tree: ast.Module
    pragmas: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    project: Optional["Project"] = None

    def __post_init__(self) -> None:
        if not self.pragmas:
            self.pragmas = _parse_pragmas(self.source)
        first_code_line = self.tree.body[0].lineno if self.tree.body else 1
        self._module_disabled: Optional[Set[str]] = None
        module_wide: Set[str] = set()
        for line, codes in self.pragmas.items():
            if line < first_code_line:
                if codes is None:
                    self._module_disabled = None
                    module_wide = set()
                    self._all_disabled = True
                    return
                module_wide |= codes
        self._all_disabled = False
        self._module_disabled = module_wide or None

    def suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` findings on ``line`` are pragma-suppressed."""
        if self._all_disabled:
            return True
        if self._module_disabled and code in self._module_disabled:
            return True
        codes = self.pragmas.get(line, ())
        if codes is None:
            return True
        return code in codes

    def violation(self, code: str, line: int, message: str) -> Violation:
        return Violation(code, self.display_path, line, message)


class Project:
    """All modules of one check run, with a cross-module dataclass index."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleUnderCheck] = {}
        self._dataclass_fields: Optional[Dict[str, List[str]]] = None

    def add(self, module: ModuleUnderCheck) -> None:
        module.project = self
        self.modules[module.path] = module

    def dataclass_fields(self) -> Dict[str, List[str]]:
        """``class name -> ordered field names`` of every dataclass seen.

        Fields come from annotated assignments in the class body (the
        dataclass machinery's own field source); ``ClassVar`` annotations
        are not fields and are skipped.
        """
        if self._dataclass_fields is None:
            index: Dict[str, List[str]] = {}
            for module in self.modules.values():
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                        continue
                    fields: List[str] = []
                    for stmt in node.body:
                        if not isinstance(stmt, ast.AnnAssign):
                            continue
                        if not isinstance(stmt.target, ast.Name):
                            continue
                        if _is_classvar(stmt.annotation):
                            continue
                        fields.append(stmt.target.id)
                    index[node.name] = fields
            self._dataclass_fields = index
        return self._dataclass_fields


def _is_dataclass_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return isinstance(node, ast.Name) and node.id == "dataclass"


def _is_classvar(annotation: ast.expr) -> bool:
    text = ast.dump(annotation)
    return "ClassVar" in text


RuleCheck = Callable[[ModuleUnderCheck], Iterable[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    name: str
    description: str
    patterns: Tuple[str, ...]
    check: RuleCheck


#: All registered rules, in registration order.
RULES: List[Rule] = []


def register(
    code: str, name: str, description: str, patterns: Sequence[str]
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering a rule function under ``code``."""

    def decorator(check: RuleCheck) -> RuleCheck:
        RULES.append(Rule(code, name, description, tuple(patterns), check))
        return check

    return decorator


def path_matches(path: str, patterns: Sequence[str]) -> bool:
    """Whether ``path`` (posix) matches any pattern, by full match or suffix.

    Patterns are written root-relative (``core/indexes.py``, ``lsh/*.py``)
    and match files anywhere under the scanned tree, so the same scoping
    works for ``src/repro/core/indexes.py`` and a test fixture tree's
    ``core/indexes.py``.
    """
    for pattern in patterns:
        if fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(path, "*/" + pattern):
            return True
    return False


def applicable_rules(path: str, codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """Rules whose patterns match ``path`` (optionally filtered by code)."""
    selected = [
        rule
        for rule in RULES
        if path_matches(path, rule.patterns)
        and (codes is None or rule.code in codes)
    ]
    return selected
