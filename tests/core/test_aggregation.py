"""Tests for Equations 1-3: distance aggregation."""

import math

import pytest

from repro.core.aggregation import (
    aggregate_column,
    build_distance_table,
    combined_distance,
    evidence_vector,
)
from repro.core.evidence import EvidenceType
from repro.core.profiles import AttributeMatch
from repro.core.weights import EvidenceWeights
from repro.lake.datalake import AttributeRef


def _match(target, source, value, weight=1.0):
    distances = {evidence: value for evidence in EvidenceType.all()}
    weights = {evidence: weight for evidence in EvidenceType.all()}
    return AttributeMatch(
        target_attribute=target,
        source=AttributeRef("s", source),
        distances=distances,
        weights=weights,
    )


class TestAggregateColumn:
    def test_empty_matches_give_maximal_distance(self):
        assert aggregate_column([], EvidenceType.NAME) == 1.0

    def test_single_match_returns_its_distance(self):
        assert aggregate_column([_match("a", "x", 0.3)], EvidenceType.VALUE) == pytest.approx(0.3)

    def test_weighted_average(self):
        matches = [
            AttributeMatch(
                "a",
                AttributeRef("s", "x"),
                {evidence: 0.2 for evidence in EvidenceType.all()},
                {evidence: 1.0 for evidence in EvidenceType.all()},
            ),
            AttributeMatch(
                "b",
                AttributeRef("s", "y"),
                {evidence: 0.8 for evidence in EvidenceType.all()},
                {evidence: 0.0 for evidence in EvidenceType.all()},
            ),
        ]
        # The zero-weighted match should not drag the average towards 0.8.
        assert aggregate_column(matches, EvidenceType.NAME) == pytest.approx(0.2)

    def test_all_zero_weights_fall_back_to_mean(self):
        matches = [_match("a", "x", 0.2, weight=0.0), _match("b", "y", 0.6, weight=0.0)]
        assert aggregate_column(matches, EvidenceType.NAME) == pytest.approx(0.4)

    def test_missing_weight_defaults_to_one(self):
        match = AttributeMatch(
            "a",
            AttributeRef("s", "x"),
            {evidence: 0.5 for evidence in EvidenceType.all()},
        )
        assert aggregate_column([match], EvidenceType.FORMAT) == pytest.approx(0.5)


class TestEvidenceVector:
    def test_has_all_five_dimensions(self):
        vector = evidence_vector([_match("a", "x", 0.4)])
        assert set(vector) == set(EvidenceType.all())

    def test_vector_values_bounded(self):
        vector = evidence_vector([_match("a", "x", 0.4), _match("b", "y", 0.9)])
        assert all(0.0 <= value <= 1.0 for value in vector.values())


class TestCombinedDistance:
    def test_zero_vector_is_zero_distance(self):
        vector = {evidence: 0.0 for evidence in EvidenceType.all()}
        assert combined_distance(vector, EvidenceWeights.uniform()) == 0.0

    def test_unit_vector_distance(self):
        vector = {evidence: 1.0 for evidence in EvidenceType.all()}
        # sqrt(sum(w^2) / sum(w)) with w=1 gives sqrt(5/5) = 1.
        assert combined_distance(vector, EvidenceWeights.uniform()) == pytest.approx(1.0)

    def test_monotone_in_each_dimension(self):
        base = {evidence: 0.5 for evidence in EvidenceType.all()}
        larger = dict(base)
        larger[EvidenceType.VALUE] = 0.9
        weights = EvidenceWeights.uniform()
        assert combined_distance(larger, weights) > combined_distance(base, weights)

    def test_zero_weight_dimension_ignored(self):
        vector = {evidence: 0.0 for evidence in EvidenceType.all()}
        vector[EvidenceType.DISTRIBUTION] = 1.0
        weights = EvidenceWeights.single(EvidenceType.VALUE)
        assert combined_distance(vector, weights) == 0.0

    def test_all_zero_weights_fall_back_to_unweighted_norm(self):
        vector = {evidence: 0.5 for evidence in EvidenceType.all()}
        weights = EvidenceWeights({evidence: 0.0 for evidence in EvidenceType.all()})
        assert combined_distance(vector, weights) == pytest.approx(0.5)

    def test_matches_formula_with_normalised_weights(self):
        vector = {
            EvidenceType.NAME: 0.2,
            EvidenceType.VALUE: 0.4,
            EvidenceType.FORMAT: 0.6,
            EvidenceType.EMBEDDING: 0.8,
            EvidenceType.DISTRIBUTION: 1.0,
        }
        weights = EvidenceWeights(
            {
                EvidenceType.NAME: 2.0,
                EvidenceType.VALUE: 1.0,
                EvidenceType.FORMAT: 0.5,
                EvidenceType.EMBEDDING: 1.5,
                EvidenceType.DISTRIBUTION: 0.0,
            }
        )
        # Weights are rescaled so the largest equals 1 (2.0 -> 1.0, etc.).
        scaled = [1.0, 0.5, 0.25, 0.75, 0.0]
        values = [0.2, 0.4, 0.6, 0.8, 1.0]
        numerator = sum((w * v) ** 2 for w, v in zip(scaled, values))
        expected = math.sqrt(numerator / sum(scaled))
        assert combined_distance(vector, weights) == pytest.approx(expected)

    def test_weight_scaling_does_not_change_ranking(self):
        near = {evidence: 0.2 for evidence in EvidenceType.all()}
        far = {evidence: 0.7 for evidence in EvidenceType.all()}
        small = EvidenceWeights({evidence: 0.3 for evidence in EvidenceType.all()})
        large = EvidenceWeights({evidence: 30.0 for evidence in EvidenceType.all()})
        assert combined_distance(near, small) < combined_distance(far, small)
        assert combined_distance(near, large) < combined_distance(far, large)

    def test_bounded_even_with_large_weights(self):
        vector = {evidence: 1.0 for evidence in EvidenceType.all()}
        weights = EvidenceWeights({evidence: 50.0 for evidence in EvidenceType.all()})
        assert combined_distance(vector, weights) <= 1.0


class TestDistanceTable:
    def test_rows_follow_matches(self):
        matches = [_match("City", "Town", 0.3), _match("Postcode", "PostCode", 0.1)]
        rows = build_distance_table(matches)
        assert len(rows) == 2
        assert rows[0]["pair"] == ("City", "s.Town")
        assert set(rows[0]) == {"pair", "DN", "DV", "DF", "DE", "DD"}
