"""Opt-in runtime sanitizer (``REPRO_SANITIZE=1``) for the zero-copy stack.

Three dynamic checks complement the static rules of ``repro check`` —
cheap enough to leave on in stress tests, off by default in production:

* **write barrier** — every array a worker attaches through
  :meth:`~repro.core.shared.SharedIndexSnapshot.attach` must be read-only;
  a writable view means the ``flags.writeable = False`` freeze was lost
  and a worker could scribble on the host's segment.  With the barrier
  armed, :func:`assert_read_only_views` turns that silent hazard into a
  :class:`SanitizerError` at attach time (and NumPy itself raises on any
  later write to a frozen view).
* **segment ledger** — the first shared segment created under the
  sanitizer arms an ``atexit`` audit: any segment still registered live at
  interpreter exit is reported on stderr, reaped, and the process is
  hard-exited with status 1 (CPython swallows exceptions raised from
  atexit callbacks, so a plain raise would exit 0).  The
  ``weakref.finalize`` gc backstop runs *after* this audit (atexit hooks
  are LIFO) — deliberately: relying on the backstop instead of ``close()``
  is exactly the leak the ledger exists to flag.
* **lock-order tracker** — a per-thread stack of named lock/resource
  scopes.  Re-entering a held scope (e.g. checking a second session out of
  the server's bounded pool while holding one — a deadlock on a full
  pool) raises immediately; acquiring two scopes in opposite orders on
  different paths raises on the second path.  The server's session-pool
  checkout and state-lock paths are instrumented.

Everything is a no-op unless the ``REPRO_SANITIZE`` environment variable
is set to a truthy value (anything but ``""``/``"0"``/``"false"``/``"no"``),
so the hot paths carry a single cached boolean check.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Dict, Iterator, List, Tuple

#: The opt-in switch. Read once per call site through :func:`sanitize_enabled`.
ENV_VAR = "REPRO_SANITIZE"

_FALSEY = ("", "0", "false", "no")


class SanitizerError(AssertionError):
    """An invariant the runtime sanitizer guards was violated."""


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests the runtime sanitizer."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


# --------------------------------------------------------------------------- #
# write barrier
# --------------------------------------------------------------------------- #


def assert_read_only_views(context: str, arrays: Dict[str, object]) -> None:
    """Raise when any attached array view is writable (sanitizer only).

    ``arrays`` maps names to NumPy arrays; non-array values are ignored so
    callers can pass heterogeneous manifests.
    """
    if not sanitize_enabled():
        return
    for name, array in arrays.items():
        flags = getattr(array, "flags", None)
        if flags is not None and getattr(flags, "writeable", False):
            raise SanitizerError(
                f"sanitizer[write-barrier]: attached array {context}:{name} is "
                "writable — zero-copy views over a shared segment must be "
                "frozen with flags.writeable = False"
            )


# --------------------------------------------------------------------------- #
# segment ledger
# --------------------------------------------------------------------------- #

_ledger_lock = threading.Lock()
_ledger_armed = False


def arm_segment_ledger() -> None:
    """Install the exit-time leak audit (idempotent; sanitizer only).

    Called by the shared-snapshot layer whenever it creates a segment, so
    merely running under ``REPRO_SANITIZE=1`` arms the audit the moment the
    first segment exists.
    """
    global _ledger_armed
    if not sanitize_enabled():
        return
    with _ledger_lock:
        if not _ledger_armed:
            _ledger_armed = True
            atexit.register(_audit_segments_at_exit)


def _audit_segments_at_exit() -> None:
    if not sanitize_enabled():
        # Armed under a monkeypatched env (tests): the sanitizer was turned
        # back off before interpreter exit, so the audit stands down.
        return
    leaked = _live_segments()
    if not leaked:
        return
    preview = ", ".join(leaked[:5])
    print(
        f"sanitizer[segment-ledger]: {len(leaked)} shared segment(s) still "
        f"live at exit (close() every snapshot): {preview}",
        file=sys.stderr,
    )
    # CPython swallows exceptions raised from atexit callbacks ("Exception
    # ignored in atexit callback"), so failing loudly means hard-exiting.
    # os._exit skips the remaining atexit callbacks — including the
    # weakref.finalize gc backstops that would have unlinked the segments —
    # so reap the leaked backings here first; nothing may outlive the audit.
    _reap_segments(leaked)
    sys.stderr.flush()
    sys.stdout.flush()
    os._exit(1)


def _live_segments() -> List[str]:
    try:
        from repro.core.shared import live_segment_locators
    except ImportError:  # pragma: no cover - shared layer gone mid-shutdown
        return []
    return live_segment_locators()


def _reap_segments(locators: List[str]) -> None:
    try:
        from repro.core.shared import _LIVE_SEGMENTS
    except ImportError:  # pragma: no cover - shared layer gone mid-shutdown
        return
    for locator in locators:
        kind = _LIVE_SEGMENTS.get(locator)
        path = f"/dev/shm/{locator}" if kind == "shm" else locator
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone / exotic backing
            pass


# --------------------------------------------------------------------------- #
# lock-order / held-lock tracker
# --------------------------------------------------------------------------- #


class LockTracker:
    """Named-scope tracker detecting re-entrant and inverted acquisitions.

    Scopes are identified by name (``"discovery-server.session-pool"``).
    The tracker records every (outer, inner) nesting it observes; seeing
    the reversed pair later is a lock-order inversion — the classic
    two-path deadlock — and raises even if the schedule that would
    actually deadlock never happens in this run.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._order: Dict[Tuple[str, str], str] = {}
        self._order_lock = threading.Lock()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held(self) -> Tuple[str, ...]:
        """The scopes held by the calling thread, outermost first."""
        return tuple(self._stack())

    @contextmanager
    def holding(self, name: str) -> Iterator[None]:
        """Track one named acquisition for the duration of the block."""
        stack = self._stack()
        if name in stack:
            raise SanitizerError(
                f"sanitizer[lock-order]: re-entrant acquisition of {name!r} "
                f"(already held: {stack}) — on a bounded pool this deadlocks "
                "when the pool is exhausted"
            )
        with self._order_lock:
            for outer in stack:
                if (name, outer) in self._order:
                    raise SanitizerError(
                        f"sanitizer[lock-order]: {outer!r} -> {name!r} inverts "
                        f"the order seen at {self._order[(name, outer)]}"
                    )
                self._order.setdefault((outer, name), name)
        stack.append(name)
        try:
            yield
        finally:
            stack.pop()

    def reset(self) -> None:
        """Forget recorded orders (test isolation)."""
        with self._order_lock:
            self._order.clear()
        self._local = threading.local()


#: Process-wide tracker instrumenting the serving tier.
TRACKER = LockTracker()


def tracked_scope(name: str) -> ContextManager[None]:
    """``TRACKER.holding(name)`` under the sanitizer, a no-op otherwise."""
    if sanitize_enabled():
        return TRACKER.holding(name)
    return nullcontext()
