"""Tests for the base table specifications and their materialisation."""

import numpy as np
import pytest

from repro.datagen.base_tables import (
    build_base_table,
    build_base_tables,
    default_base_specs,
)
from repro.datagen.vocab import default_vocabulary


@pytest.fixture(scope="module")
def vocabulary():
    return default_vocabulary()


class TestSpecs:
    def test_thirty_two_base_specs(self):
        assert len(default_base_specs()) == 32

    def test_spec_names_unique(self):
        names = [spec.name for spec in default_base_specs()]
        assert len(set(names)) == len(names)

    def test_all_domains_exist_in_vocabulary(self, vocabulary):
        for spec in default_base_specs():
            for domain in spec.domains:
                assert domain in vocabulary, (spec.name, domain)

    def test_subject_domain_is_textual(self, vocabulary):
        for spec in default_base_specs():
            assert not vocabulary.domain(spec.subject_domain).numeric, spec.name

    def test_specs_are_wide(self):
        for spec in default_base_specs():
            assert len(spec.domains) >= 6, spec.name

    def test_topics_cover_multiple_areas(self):
        topics = {spec.topic for spec in default_base_specs()}
        assert len(topics) >= 5


class TestMaterialisation:
    def test_row_count(self, vocabulary):
        spec = default_base_specs()[0]
        base = build_base_table(spec, vocabulary, rows=50, rng=np.random.default_rng(0))
        assert base.table.cardinality == 50

    def test_column_count_matches_spec(self, vocabulary):
        spec = default_base_specs()[0]
        base = build_base_table(spec, vocabulary, rows=10, rng=np.random.default_rng(0))
        assert base.table.arity == len(spec.domains)

    def test_column_domains_recorded(self, vocabulary):
        spec = default_base_specs()[0]
        base = build_base_table(spec, vocabulary, rows=10, rng=np.random.default_rng(0))
        assert set(base.column_domains.values()) == set(spec.domains)

    def test_subject_attribute_is_first_column(self, vocabulary):
        spec = default_base_specs()[3]
        base = build_base_table(spec, vocabulary, rows=10, rng=np.random.default_rng(1))
        assert base.subject_attribute == base.table.column_names[0]

    def test_repeated_domains_get_distinct_names(self, vocabulary):
        spec = default_base_specs()[0]
        spec.domains.append(spec.domains[1])
        try:
            base = build_base_table(spec, vocabulary, rows=5, rng=np.random.default_rng(2))
            assert len(set(base.table.column_names)) == base.table.arity
        finally:
            spec.domains.pop()

    def test_build_all_base_tables(self, vocabulary):
        bases = build_base_tables(rows=20, seed=0, vocabulary=vocabulary)
        assert len(bases) == 32
        assert all(base.table.cardinality == 20 for base in bases)

    def test_deterministic_given_seed(self, vocabulary):
        first = build_base_tables(rows=10, seed=5, vocabulary=vocabulary)[0]
        second = build_base_tables(rows=10, seed=5, vocabulary=vocabulary)[0]
        assert first.table == second.table
