"""Locality-sensitive hashing substrate.

The paper's discovery engine (and both baselines) are built on LSH:

* :class:`~repro.lsh.minhash.MinHash` signatures approximate Jaccard
  similarity (Broder 1997) and back the name, value and format indexes;
* :class:`~repro.lsh.random_projection.RandomProjection` signatures
  approximate cosine similarity (Charikar 2002) and back the word-embedding
  index;
* :class:`~repro.lsh.lsh_index.LSHIndex` is the classic banded index with a
  similarity threshold;
* :class:`~repro.lsh.lsh_forest.LSHForest` is the self-tuning top-k index of
  Bawa et al. (2005) that the paper configures with threshold 0.7 and
  MinHash size 256;
* :class:`~repro.lsh.lsh_ensemble.LSHEnsemble` is the skew-aware containment
  index of Zhu et al. (2016), mentioned by the paper as a compatible
  improvement and used by the join-path machinery for containment search.
"""

from repro.lsh.hashing import HashFamily, hash_token, hash_tokens
from repro.lsh.lsh_ensemble import LSHEnsemble
from repro.lsh.lsh_forest import LSHForest
from repro.lsh.lsh_index import LSHIndex, optimal_bands
from repro.lsh.minhash import MinHash, MinHashFactory, batch_jaccard_distances
from repro.lsh.random_projection import (
    RandomProjection,
    RandomProjectionFactory,
    batch_cosine_distances,
)

__all__ = [
    "HashFamily",
    "LSHEnsemble",
    "LSHForest",
    "LSHIndex",
    "MinHash",
    "MinHashFactory",
    "RandomProjection",
    "RandomProjectionFactory",
    "batch_cosine_distances",
    "batch_jaccard_distances",
    "hash_token",
    "hash_tokens",
    "optimal_bands",
]
