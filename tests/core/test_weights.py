"""Tests for Equation 3 evidence weights and their training."""

import numpy as np
import pytest

from repro.core.evidence import EvidenceType
from repro.core.weights import DEFAULT_WEIGHTS, EvidenceWeights, train_evidence_weights


class TestEvidenceWeights:
    def test_defaults_cover_all_evidence_types(self):
        weights = EvidenceWeights()
        assert set(weights.values) == set(EvidenceType.all())

    def test_getitem_and_get(self):
        weights = EvidenceWeights()
        assert weights[EvidenceType.VALUE] == DEFAULT_WEIGHTS[EvidenceType.VALUE]
        assert weights.get(EvidenceType.VALUE) == DEFAULT_WEIGHTS[EvidenceType.VALUE]

    def test_as_dict_returns_copy(self):
        weights = EvidenceWeights()
        copy = weights.as_dict()
        copy[EvidenceType.VALUE] = 99.0
        assert weights[EvidenceType.VALUE] != 99.0

    def test_uniform(self):
        weights = EvidenceWeights.uniform()
        assert all(value == 1.0 for value in weights.values.values())

    def test_single(self):
        weights = EvidenceWeights.single(EvidenceType.FORMAT)
        assert weights[EvidenceType.FORMAT] == 1.0
        assert weights[EvidenceType.VALUE] == 0.0

    def test_normalised_sums_to_type_count(self):
        weights = EvidenceWeights().normalised()
        assert sum(weights.values.values()) == pytest.approx(len(EvidenceType.all()))

    def test_normalised_handles_zero_total(self):
        weights = EvidenceWeights({evidence: 0.0 for evidence in EvidenceType.all()})
        assert sum(weights.normalised().values.values()) > 0


def _make_pairs(n, seed=0):
    """Synthetic training data where VALUE and NAME distances predict relatedness."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(n):
        related = int(rng.random() < 0.5)
        base = 0.2 if related else 0.8
        vector = {
            EvidenceType.NAME: float(np.clip(base + rng.normal(0, 0.1), 0, 1)),
            EvidenceType.VALUE: float(np.clip(base + rng.normal(0, 0.1), 0, 1)),
            EvidenceType.FORMAT: float(rng.uniform(0, 1)),
            EvidenceType.EMBEDDING: float(np.clip(base + rng.normal(0, 0.2), 0, 1)),
            EvidenceType.DISTRIBUTION: 1.0,
        }
        pairs.append((vector, related))
    return pairs


class TestTraining:
    def test_empty_training_set_returns_defaults(self):
        weights = train_evidence_weights([])
        assert weights.values == DEFAULT_WEIGHTS

    def test_single_class_returns_defaults(self):
        pairs = [({evidence: 0.5 for evidence in EvidenceType.all()}, 1) for _ in range(10)]
        weights = train_evidence_weights(pairs)
        assert weights.values == DEFAULT_WEIGHTS

    def test_discriminative_evidence_gets_higher_weight(self):
        weights = train_evidence_weights(_make_pairs(300))
        assert weights[EvidenceType.VALUE] > weights[EvidenceType.FORMAT]
        assert weights[EvidenceType.NAME] > weights[EvidenceType.DISTRIBUTION]

    def test_training_accuracy_reported(self):
        weights = train_evidence_weights(_make_pairs(200), _make_pairs(100, seed=5))
        assert weights.training_accuracy is not None
        assert weights.training_accuracy > 0.8

    def test_all_weights_positive(self):
        weights = train_evidence_weights(_make_pairs(200))
        assert all(value > 0 for value in weights.values.values())

    def test_accuracy_without_test_set_uses_training_set(self):
        weights = train_evidence_weights(_make_pairs(150))
        assert weights.training_accuracy is not None
