"""Reproduce the paper's full evaluation at a chosen scale, without pytest.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) is the
canonical reproduction entry point; this example drives the same experiment
runners directly and writes a consolidated report, which is convenient for
quick smoke-scale runs or for embedding the sweep in a notebook.

Run with::

    python examples/reproduce_experiments.py --scale smoke
    python examples/reproduce_experiments.py --scale small --output ./my_results
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.evaluation.runner import SCALES, run_all_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--output", default="./experiment_results")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Running every experiment at scale '{args.scale}' ...")
    report = run_all_experiments(scale=args.scale, seed=args.seed)
    print(report.render())

    written = report.save(Path(args.output))
    print("\nReports written:")
    for path in written:
        print(f"  {path}")


if __name__ == "__main__":
    main()
