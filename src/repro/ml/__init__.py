"""Machine-learning utilities used by the framework.

Two learned components appear in the paper:

* the logistic-regression classifier (optimised with coordinate descent)
  whose coefficients become the evidence-type weights of Equation 3
  (section III-D), and
* the supervised subject-attribute detector in the style of Venetis et al.
  used by the numeric-evidence guard and the join-path machinery
  (section III-C).
"""

from repro.ml.cross_validation import cross_validate_accuracy, k_fold_indices, train_test_split
from repro.ml.logistic_regression import LogisticRegression
from repro.ml.subject_attribute import (
    SubjectAttributeClassifier,
    column_feature_vector,
    heuristic_subject_attribute,
)

__all__ = [
    "LogisticRegression",
    "SubjectAttributeClassifier",
    "column_feature_vector",
    "cross_validate_accuracy",
    "heuristic_subject_attribute",
    "k_fold_indices",
    "train_test_split",
]
