"""Integration test: materialise a corpus to CSV, reload it, and discover.

This is the workflow of a real deployment: the lake lives on disk as CSV
files; discovery must behave identically after a round trip through CSV.
"""

import pytest

from repro.core.discovery import D3L
from repro.lake.datalake import DataLake


class TestCsvRoundTripDiscovery:
    @pytest.fixture(scope="class")
    def reloaded_lake(self, small_synthetic_benchmark, tmp_path_factory):
        directory = tmp_path_factory.mktemp("lake_csv")
        small_synthetic_benchmark.lake.to_directory(directory)
        return DataLake.from_directory(directory, name="reloaded")

    def test_all_tables_survive_round_trip(self, reloaded_lake, small_synthetic_benchmark):
        assert set(reloaded_lake.table_names) == set(
            small_synthetic_benchmark.lake.table_names
        )

    def test_schemas_survive_round_trip(self, reloaded_lake, small_synthetic_benchmark):
        for table in small_synthetic_benchmark.lake:
            assert reloaded_lake.table(table.name).column_names == table.column_names

    def test_discovery_results_consistent_after_round_trip(
        self, reloaded_lake, small_synthetic_benchmark, fast_config
    ):
        original_engine = D3L(config=fast_config)
        original_engine.index_lake(small_synthetic_benchmark.lake)
        reloaded_engine = D3L(config=fast_config)
        reloaded_engine.index_lake(reloaded_lake)

        target = small_synthetic_benchmark.pick_targets(1, seed=8)[0]
        k = 5
        original_top = original_engine.query(target, k=k).table_names(k)
        reloaded_top = reloaded_engine.query(target, k=k).table_names(k)
        # The rankings should agree on most of the top-k (CSV round-tripping
        # can only perturb cell renderings, not the content).
        assert len(set(original_top) & set(reloaded_top)) >= k - 1
