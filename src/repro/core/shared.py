"""Zero-copy shared-memory snapshots of :class:`~repro.core.indexes.D3LIndexes`.

The paper's deployment model (Figure 6a) is index-once, query-many: one host
holds one read-only index and many worker processes answer queries against
it.  Before this layer, every fan-out pool shipped a full pickled index to
every worker — N workers cost N× resident memory plus serialization on the
hot path.  A :class:`SharedIndexSnapshot` instead exports the index **once**
into a named segment and workers attach by name:

* the v3 persistence sections (:func:`repro.core.persistence.indexes_sections`)
  are split into a small picklable manifest (config, embedding model, subject
  classifier, profiles, refs, forest item lists) and the raw NumPy buffers
  (per-evidence signature matrices and degeneracy flags, per-tree sorted
  forest key arrays plus their precomputed rank-key bytes);
* the buffers are laid out 64-byte aligned behind the manifest in one
  ``multiprocessing.shared_memory`` segment (or an mmap'd file when POSIX
  shared memory is unavailable — same byte layout, same attach path);
* :meth:`SharedIndexSnapshot.attach` reconstructs a **read-only** index whose
  :class:`~repro.core.indexes.SignatureMatrix` and
  :class:`~repro.lsh.lsh_forest.LSHForest` arrays are views over the shared
  buffer — no array data is copied or pickled; only the manifest is
  unpickled once per process.

Lifecycle: the creator (a fan-out executor, owned by ``D3L`` /
``DiscoverySession``) holds the snapshot for the life of its worker pool and
releases the segment via :meth:`close` when the pool is shut down or the
index version bumps; a ``weakref.finalize`` backstop releases it when the
snapshot is dropped without an explicit close, so abandoned engines cannot
leak ``/dev/shm`` segments.  Attached mappings in live workers stay valid
after the unlink (POSIX semantics; the file backing behaves the same way).

Pickle remains the manifest serialisation — the manifest is produced by this
library from its own sections; treat descriptors like any other binary cache
and do not attach segments from untrusted sources.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import tempfile
import threading
import uuid
import weakref
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import sanitizer

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.indexes import D3LIndexes

#: Name prefix of every segment (and fallback file) this layer creates; the
#: leak-audit helpers and the tier-1 leak fixture key on it.
SEGMENT_PREFIX = "d3l_snap_"

#: Buffers are laid out on 64-byte boundaries so every array view is aligned
#: for its dtype (and cache-line aligned for the distance kernels).
_ALIGNMENT = 64

#: Segment header: one little-endian uint64 holding the manifest pickle size.
_HEADER = struct.Struct("<Q")

#: Descriptor shipped through pool initializers: ``(kind, locator)`` where
#: kind is ``"shm"`` (segment name), ``"file"`` (mmap fallback path), or
#: ``"pickle"`` (degraded: the locator *is* the pickled index, shipped the
#: pre-snapshot way when no shared backing could be created).
Descriptor = Tuple[str, object]

#: Per-process attach cache: a process attaching the same descriptor twice
#: (e.g. a worker initialised for queries whose pool then verifies join
#: overlaps) reuses one mapping and one restored index.
_ATTACHED: Dict[Tuple[str, str], "D3LIndexes"] = {}

#: Live segments created by this process: locator -> kind.  Audited by
#: :func:`stray_segments` so tests can assert that everything on disk is
#: owned by a live snapshot.
_LIVE_SEGMENTS: Dict[str, str] = {}
_LIVE_LOCK = threading.Lock()


class SharedSnapshotError(RuntimeError):
    """Raised when a shared snapshot cannot be created or attached."""


def _array_specs(
    sections: Dict[str, object]
) -> Tuple[Dict[str, object], List[Tuple[str, np.ndarray]]]:
    """Split v3 sections into a picklable manifest ``meta`` and named buffers.

    The arrays keep a deterministic naming scheme
    (``{evidence}/matrix|flags`` and ``{evidence}/tree{t}/keys|ranks``) so
    the attach side can reassemble the sections without positional coupling.
    """
    from repro.lsh.lsh_forest import rank_key_bytes

    arrays: List[Tuple[str, np.ndarray]] = []
    evidence_meta: Dict[str, object] = {}
    for value, section in sections["evidence"].items():
        forest = section["forest"]
        items: List[list] = []
        for tree_index, tree_state in enumerate(forest["trees"]):
            keys = np.ascontiguousarray(tree_state["keys"], dtype=np.uint64)
            arrays.append((f"{value}/tree{tree_index}/keys", keys))
            arrays.append((f"{value}/tree{tree_index}/ranks", rank_key_bytes(keys)))
            items.append(tree_state["items"])
        arrays.append(
            (f"{value}/matrix", np.ascontiguousarray(section["matrix"]))
        )
        arrays.append(
            (f"{value}/flags", np.ascontiguousarray(section["flags"], dtype=bool))
        )
        evidence_meta[value] = {
            "refs": section["refs"],
            "forest": {
                "num_hashes": forest["num_hashes"],
                "num_trees": forest["num_trees"],
                "seed": forest["seed"],
                "items": items,
            },
            "matrix_dtype": str(np.asarray(section["matrix"]).dtype),
        }
    meta = {
        "config": sections["config"],
        "embedding_model": sections["embedding_model"],
        "subject_classifier": sections["subject_classifier"],
        "profiles": sections["profiles"],
        "table_profiles": sections["table_profiles"],
        "evidence": evidence_meta,
    }
    return meta, arrays


def _reassemble_sections(
    meta: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> Dict[str, object]:
    """Rebuild the v3 sections from a manifest plus named buffer views."""
    evidence_sections: Dict[str, object] = {}
    for value, entry in meta["evidence"].items():
        forest_meta = entry["forest"]
        trees = [
            {
                "keys": arrays[f"{value}/tree{tree_index}/keys"],
                "ranks": arrays[f"{value}/tree{tree_index}/ranks"],
                "items": items,
            }
            for tree_index, items in enumerate(forest_meta["items"])
        ]
        evidence_sections[value] = {
            "refs": entry["refs"],
            "matrix": arrays[f"{value}/matrix"],
            "flags": arrays[f"{value}/flags"],
            "forest": {
                "num_hashes": forest_meta["num_hashes"],
                "num_trees": forest_meta["num_trees"],
                "seed": forest_meta["seed"],
                "trees": trees,
            },
        }
    return {
        "config": meta["config"],
        "embedding_model": meta["embedding_model"],
        "subject_classifier": meta["subject_classifier"],
        "profiles": meta["profiles"],
        "table_profiles": meta["table_profiles"],
        "evidence": evidence_sections,
    }


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _release_backing(kind: str, locator: str, handle: object) -> None:
    """Unlink one backing (idempotent; the weakref.finalize target)."""
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.pop(locator, None)
    if kind == "shm":
        try:
            handle.close()
            handle.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    else:
        try:
            os.unlink(locator)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SharedIndexSnapshot:
    """One read-only export of a ``D3LIndexes`` that workers attach by name.

    Create with :meth:`create` (the owner side), ship :attr:`descriptor`
    through a pool initializer, and call :meth:`attach` in each worker.  The
    owner must :meth:`close` the snapshot when its pool is torn down or the
    index mutates; dropping the object without closing triggers the
    ``weakref.finalize`` backstop.
    """

    def __init__(
        self,
        descriptor: Descriptor,
        version: int,
        total_bytes: int,
        handle: object,
    ) -> None:
        self._descriptor = descriptor
        self.version = version
        self.total_bytes = total_bytes
        kind, locator = descriptor
        self._finalizer = weakref.finalize(
            self, _release_backing, kind, locator, handle
        )

    # ------------------------------------------------------------------ #
    # owner side
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, indexes: "D3LIndexes", backing: str = "auto"
    ) -> "SharedIndexSnapshot":
        """Export ``indexes`` into a shared segment (or the mmap'd fallback).

        ``backing`` is ``"auto"`` (POSIX shared memory, falling back to an
        mmap'd file), ``"shm"``, or ``"file"``.  The export reuses the v3
        persistence section writers with ``copy=False``, so each buffer is
        read exactly once while being streamed into the segment.
        """
        from repro.core.persistence import indexes_sections

        if backing not in ("auto", "shm", "file"):
            raise ValueError(f"unknown snapshot backing {backing!r}")
        meta, arrays = _array_specs(indexes_sections(indexes, copy=False))
        specs: Dict[str, Dict[str, object]] = {}
        offset = 0  # filled in after the manifest size is known
        payload_arrays: List[Tuple[int, np.ndarray]] = []
        # Two-pass layout: sizes first (the manifest embeds the offsets), so
        # pickle the manifest with placeholder offsets, then patch.  Offsets
        # are relative to the end of the header+manifest block, which keeps
        # the manifest pickle size independent of its own length.
        for name, array in arrays:
            offset = _aligned(offset)
            specs[name] = {
                "offset": offset,
                "shape": tuple(array.shape),
                "dtype": str(array.dtype),
            }
            payload_arrays.append((offset, array))
            offset += array.nbytes
        manifest = {
            "format": 3,
            "version": indexes.version,
            "meta": meta,
            "arrays": specs,
        }
        blob = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
        base = _aligned(_HEADER.size + len(blob))
        total = base + max(offset, 1)

        locator, handle, buf = cls._create_backing(backing, total)
        try:
            cls._write_payload(buf, blob, base, payload_arrays)
            if isinstance(handle, tuple):  # file backing: flush and seal
                mapped, file_handle = handle
                buf.release()
                mapped.flush()
                mapped.close()
                file_handle.close()
                kind = "file"
                handle = locator
            else:
                kind = "shm"
        except BaseException:
            if isinstance(handle, tuple):
                mapped, file_handle = handle
                buf.release()
                mapped.close()
                file_handle.close()
                _release_backing("file", locator, locator)
            else:
                _release_backing("shm", locator, handle)
            raise
        descriptor: Descriptor = (kind, locator)
        return cls(descriptor, indexes.version, total, handle)

    @staticmethod
    def _write_payload(
        buf,
        blob: bytes,
        base: int,
        payload_arrays: List[Tuple[int, np.ndarray]],
    ) -> None:
        """Stream header, manifest, and arrays into the backing buffer.

        Isolated in a function so every NumPy view over ``buf`` is dropped on
        return — the file backing cannot close an mmap with exported pointers.
        """
        _HEADER.pack_into(buf, 0, len(blob))
        buf[_HEADER.size : _HEADER.size + len(blob)] = blob
        for rel_offset, array in payload_arrays:
            if array.nbytes == 0:
                continue
            view = np.frombuffer(
                buf,
                dtype=array.dtype,
                count=array.size,
                offset=base + rel_offset,
            ).reshape(array.shape)
            view[...] = array

    @staticmethod
    def _create_backing(backing: str, total: int):
        """Allocate the segment: ``(locator, handle, writable buffer)``."""
        name = f"{SEGMENT_PREFIX}{os.getpid():x}_{uuid.uuid4().hex[:12]}"
        if backing == "auto" and not Path("/dev/shm").is_dir():
            backing = "file"  # attach maps /dev/shm directly; see attach()
        if backing in ("auto", "shm"):
            try:
                from multiprocessing import shared_memory

                segment = shared_memory.SharedMemory(
                    create=True, size=total, name=name
                )
                with _LIVE_LOCK:
                    _LIVE_SEGMENTS[segment.name] = "shm"
                # Under REPRO_SANITIZE=1, segments still live at interpreter
                # exit fail the process (the gc backstop doesn't count).
                sanitizer.arm_segment_ledger()
                return segment.name, segment, segment.buf
            except (ImportError, OSError, ValueError):
                if backing == "shm":
                    raise SharedSnapshotError(
                        f"cannot create a {total}-byte POSIX shared-memory segment"
                    )
        try:
            path = Path(tempfile.gettempdir()) / f"{name}.v3"
            with path.open("wb") as seed_handle:
                seed_handle.truncate(total)
            file_handle = path.open("r+b")
            mapped = mmap.mmap(file_handle.fileno(), total)
            with _LIVE_LOCK:
                _LIVE_SEGMENTS[str(path)] = "file"
            sanitizer.arm_segment_ledger()
            return str(path), (mapped, file_handle), memoryview(mapped)
        except OSError as error:
            raise SharedSnapshotError(
                f"cannot create an mmap'd snapshot file: {error}"
            ) from error

    @property
    def descriptor(self) -> Descriptor:
        """The picklable ``(kind, locator)`` workers attach with."""
        return self._descriptor

    def shipped_bytes(self) -> int:
        """Bytes actually serialized into a pool initializer per worker."""
        return len(pickle.dumps(self._descriptor, protocol=pickle.HIGHEST_PROTOCOL))

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Release the segment (idempotent).

        Workers that already attached keep their mappings — POSIX unlink
        semantics — but no new attach can start and nothing stays on disk.
        """
        self._finalizer()

    unlink = close

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    @staticmethod
    def attach(descriptor: Descriptor) -> "D3LIndexes":
        """Reconstruct a read-only index over the shared buffers (no copy).

        One process attaches each descriptor at most once (cached); the
        restored index keeps the mapping alive for its own lifetime.  The
        degraded ``("pickle", indexes)`` descriptor — used when no shared
        backing could be created — returns the shipped object directly.
        """
        kind, locator = descriptor
        if kind == "pickle":
            return locator  # the pickled index itself, shipped the old way
        key = (kind, locator)
        cached = _ATTACHED.get(key)
        if cached is not None:
            return cached

        if kind == "shm":
            # Map the POSIX segment directly (it is a file under /dev/shm)
            # instead of going through SharedMemory: plain refcounting keeps
            # the mapping alive exactly as long as the views, with no
            # resource-tracker registration and no destructor ordering
            # hazards in worker processes at interpreter exit.
            path = f"/dev/shm/{locator}"
        elif kind == "file":
            path = str(locator)
        else:
            raise SharedSnapshotError(f"unknown snapshot descriptor kind {kind!r}")
        try:
            file_handle = open(path, "rb")
        except FileNotFoundError as error:
            raise SharedSnapshotError(
                f"snapshot backing {path!r} is gone (snapshot closed?)"
            ) from error
        with file_handle:
            mapped = mmap.mmap(file_handle.fileno(), 0, access=mmap.ACCESS_READ)
        buf = memoryview(mapped)
        keepalive = mapped

        (blob_size,) = _HEADER.unpack_from(buf, 0)
        manifest = pickle.loads(buf[_HEADER.size : _HEADER.size + blob_size])
        base = _aligned(_HEADER.size + blob_size)
        arrays: Dict[str, np.ndarray] = {}
        for name, spec in manifest["arrays"].items():
            shape = tuple(spec["shape"])
            count = int(np.prod(shape)) if shape else 1
            view = np.frombuffer(
                buf,
                dtype=np.dtype(spec["dtype"]),
                count=count,
                offset=base + spec["offset"],
            ).reshape(shape)
            if view.flags.writeable:
                view.flags.writeable = False
            arrays[name] = view
        # Write barrier: under REPRO_SANITIZE=1 a writable view here (a
        # regression of the freeze above) fails the attach outright instead
        # of letting a worker scribble on the host's segment.
        sanitizer.assert_read_only_views(f"{kind}:{locator}", arrays)

        from repro.core.persistence import restore_indexes_from_sections

        indexes = restore_indexes_from_sections(
            _reassemble_sections(manifest["meta"], arrays)
        )
        indexes.version = manifest["version"]
        # The mapping must outlive every array view handed to the index.
        indexes._shared_backing = keepalive
        _ATTACHED[key] = indexes
        return indexes


# --------------------------------------------------------------------------- #
# delta refresh
# --------------------------------------------------------------------------- #

#: Net-effect delta between two index versions: ``(target_version, ops)``
#: where each op is ``("remove", table_name, None, None)`` or
#: ``("upsert", table_name, table_profile, signatures_by_attribute)``, one op
#: per mutated table in sorted-name order.  Because each upsert carries the
#: table's *current* profile and signatures, applying a delta is idempotent
#: and convergent from any intermediate state between the base and target
#: versions.
IndexDelta = Tuple[int, List[Tuple[str, str, object, object]]]


def build_index_delta(
    indexes: "D3LIndexes", base_version: int, max_tables: Optional[int] = None
) -> Optional[IndexDelta]:
    """Net delta bringing an index at ``base_version`` up to ``indexes``.

    Returns None when the mutated-table set is not reconstructible (the base
    fell out of the journal window) or exceeds ``max_tables`` — consumers
    then fall back to a full re-ship.  Each mutated table contributes one op:
    an upsert with its current profile and per-attribute signatures, or a
    remove when it is no longer indexed.
    """
    from repro.core.evidence import EvidenceType

    mutated = indexes.mutated_tables_since(base_version)
    if mutated is None:
        return None
    if max_tables is not None and len(mutated) > max_tables:
        return None
    ops: List[Tuple[str, str, object, object]] = []
    for name in sorted(mutated):
        profile = indexes.table_profiles.get(name)
        if profile is None:
            ops.append(("remove", name, None, None))
        else:
            # The stored signatures ARE what add_profiled_table inserted, so
            # the op reuses them instead of re-signing the table.
            signatures = {
                attribute_name: {
                    evidence: indexes.signature(evidence, attribute.ref)
                    for evidence in EvidenceType.indexed()
                }
                for attribute_name, attribute in profile.attributes.items()
            }
            ops.append(("upsert", name, profile, signatures))
    return (indexes.version, ops)


def apply_index_delta(indexes: "D3LIndexes", delta: IndexDelta) -> None:
    """Apply a :func:`build_index_delta` result to a (possibly shared) index.

    No-op when ``indexes`` already reached the target version, so shipping
    the same delta with every task payload is safe — each worker applies it
    exactly once.  Mutating an attached snapshot copies only the touched
    arrays (copy-on-write in :class:`~repro.core.indexes.SignatureMatrix` and
    the forest rebuild path); the shared base segment stays untouched.
    """
    target_version, ops = delta
    if indexes.version >= target_version:
        return
    # Ops touch distinct tables (one net op per table), so all removals can
    # run first as one batch — one forest tombstone pass and one matrix
    # compaction per evidence type instead of per-table replay (the PR-8
    # known ceiling on the worker delta path).
    removals = [name for kind, name, _, _ in ops if kind == "remove"]
    if removals:
        indexes.remove_tables(removals)
    for kind, name, profile, signatures in ops:
        if kind != "remove":
            indexes.add_profiled_table(profile, signatures)
    # Pin the worker's counter to the host's: the number of *net* ops can be
    # smaller than the host's bump count, and a stale journal under a jumped
    # counter would misreport mutated_tables_since — clear it so stale bases
    # conservatively fall back to full invalidation.
    indexes.version = target_version
    indexes._mutation_log.clear()


# --------------------------------------------------------------------------- #
# leak auditing
# --------------------------------------------------------------------------- #


def live_segment_locators() -> List[str]:
    """Locators (segment names / file paths) of snapshots this process owns."""
    with _LIVE_LOCK:
        return sorted(_LIVE_SEGMENTS)


def stray_segments() -> List[str]:
    """On-disk snapshot segments not owned by a live snapshot of this process.

    Scans ``/dev/shm`` and the temp directory for the :data:`SEGMENT_PREFIX`;
    anything found that is not registered as live is a leak (or debris from
    another process — callers comparing before/after a scope, like the tier-1
    leak fixture, are immune to pre-existing debris).
    """
    with _LIVE_LOCK:
        live = set(_LIVE_SEGMENTS)
    stray: List[str] = []
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        for path in shm_dir.glob(f"{SEGMENT_PREFIX}*"):
            if path.name not in live:
                stray.append(str(path))
    for path in Path(tempfile.gettempdir()).glob(f"{SEGMENT_PREFIX}*"):
        if str(path) not in live:
            stray.append(str(path))
    return sorted(stray)
