"""Tests for random-projection (SimHash) signatures."""

import numpy as np
import pytest

from repro.lsh.random_projection import (
    RandomProjectionFactory,
    exact_cosine_distance,
    exact_cosine_similarity,
)


@pytest.fixture
def factory():
    return RandomProjectionFactory(num_bits=256, seed=3)


class TestExactCosine:
    def test_identical_vectors(self):
        assert exact_cosine_similarity([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert exact_cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_zero_vector_yields_zero_similarity(self):
        assert exact_cosine_similarity([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_distance_clipped_to_unit_interval(self):
        assert exact_cosine_distance([1.0, 0.0], [-1.0, 0.0]) == 1.0


class TestFactory:
    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            RandomProjectionFactory(num_bits=0)

    def test_signature_shape(self, factory):
        signature = factory.from_vector(np.ones(16))
        assert signature.bits.shape == (256,)

    def test_rejects_matrix_input(self, factory):
        with pytest.raises(ValueError):
            factory.from_vector(np.ones((2, 2)))

    def test_dimension_locked_after_first_use(self, factory):
        factory.from_vector(np.ones(16))
        with pytest.raises(ValueError):
            factory.from_vector(np.ones(8))

    def test_zero_vector_marked(self, factory):
        signature = factory.from_vector(np.zeros(16))
        assert signature.is_zero


class TestCosineEstimation:
    def test_identical_vectors_distance_zero(self, factory):
        rng = np.random.default_rng(0)
        vector = rng.standard_normal(32)
        first = factory.from_vector(vector)
        second = factory.from_vector(vector)
        assert first.cosine_distance(second) == 0.0

    def test_opposite_vectors_far_apart(self, factory):
        rng = np.random.default_rng(1)
        vector = rng.standard_normal(32)
        first = factory.from_vector(vector)
        second = factory.from_vector(-vector)
        assert first.cosine_distance(second) == 1.0

    def test_estimate_close_to_exact(self, factory):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(32)
        b = a + 0.5 * rng.standard_normal(32)
        estimate = factory.from_vector(a).cosine_similarity(factory.from_vector(b))
        exact = exact_cosine_similarity(a, b)
        assert abs(estimate - exact) < 0.15

    def test_zero_vector_similarity_zero(self, factory):
        zero = factory.from_vector(np.zeros(32))
        other = factory.from_vector(np.ones(32))
        assert zero.cosine_similarity(other) == 0.0
        assert zero.cosine_distance(other) == 1.0

    def test_symmetry(self, factory):
        rng = np.random.default_rng(3)
        a = factory.from_vector(rng.standard_normal(32))
        b = factory.from_vector(rng.standard_normal(32))
        assert a.cosine_similarity(b) == pytest.approx(b.cosine_similarity(a))

    def test_incompatible_signatures_raise(self, factory):
        other = RandomProjectionFactory(num_bits=256, seed=99)
        a = factory.from_vector(np.ones(8))
        b = other.from_vector(np.ones(8))
        with pytest.raises(ValueError):
            a.hamming_fraction(b)

    def test_distance_in_unit_interval(self, factory):
        rng = np.random.default_rng(4)
        a = factory.from_vector(rng.standard_normal(32))
        b = factory.from_vector(rng.standard_normal(32))
        assert 0.0 <= a.cosine_distance(b) <= 1.0
