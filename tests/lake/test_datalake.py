"""Tests for the data lake abstraction."""

import pytest

from repro.lake.datalake import AttributeRef, DataLake
from repro.tables.table import Table


@pytest.fixture
def tables():
    return [
        Table.from_dict("gp", {"Practice": ["A", "B"], "Patients": ["10", "20"]}),
        Table.from_dict("schools", {"School": ["X"], "Pupils": ["300"]}),
    ]


@pytest.fixture
def lake(tables):
    return DataLake("test_lake", tables)


class TestAttributeRef:
    def test_str(self):
        assert str(AttributeRef("gp", "Practice")) == "gp.Practice"

    def test_parse(self):
        ref = AttributeRef.parse("gp.Practice")
        assert ref == AttributeRef("gp", "Practice")

    def test_parse_with_dot_in_column(self):
        ref = AttributeRef.parse("gp.Practice.Name")
        assert ref.table == "gp"
        assert ref.column == "Practice.Name"

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            AttributeRef.parse("noseparator")

    def test_hashable_and_ordered(self):
        refs = {AttributeRef("a", "x"), AttributeRef("a", "x"), AttributeRef("b", "y")}
        assert len(refs) == 2
        assert AttributeRef("a", "x") < AttributeRef("b", "y")


class TestDataLake:
    def test_len_and_contains(self, lake):
        assert len(lake) == 2
        assert "gp" in lake
        assert "missing" not in lake

    def test_iteration_order(self, lake):
        assert [table.name for table in lake] == ["gp", "schools"]

    def test_table_lookup(self, lake):
        assert lake.table("gp").arity == 2

    def test_table_lookup_missing(self, lake):
        with pytest.raises(KeyError):
            lake.table("missing")

    def test_column_lookup(self, lake):
        column = lake.column(AttributeRef("schools", "Pupils"))
        assert column.values == ["300"]

    def test_add_table_replaces_same_name(self, lake):
        replacement = Table.from_dict("gp", {"Practice": ["Z"]})
        lake.add_table(replacement)
        assert len(lake) == 2
        assert lake.table("gp").cardinality == 1

    def test_remove_table(self, lake):
        lake.remove_table("gp")
        assert "gp" not in lake
        lake.remove_table("gp")  # no-op

    def test_attributes_enumeration(self, lake):
        refs = [ref for ref, _ in lake.attributes()]
        assert AttributeRef("gp", "Practice") in refs
        assert len(refs) == lake.attribute_count == 4

    def test_attributes_order_is_stable_under_insertion_order(self):
        """Sharded index builds rely on a sorted, insertion-order-free enumeration."""
        tables = [
            Table.from_dict("zebra", {"Z1": ["a"], "Z2": ["b"]}),
            Table.from_dict("alpha", {"A1": ["c"]}),
            Table.from_dict("mango", {"M1": ["d"]}),
        ]
        forward = DataLake("forward", tables)
        backward = DataLake("backward", list(reversed(tables)))
        forward_refs = [ref for ref, _ in forward.attributes()]
        backward_refs = [ref for ref, _ in backward.attributes()]
        assert forward_refs == backward_refs
        assert [ref.table for ref in forward_refs] == ["alpha", "mango", "zebra", "zebra"]
        # Within a table, columns keep their table order (Z1 before Z2).
        assert forward_refs[-2:] == [AttributeRef("zebra", "Z1"), AttributeRef("zebra", "Z2")]

    def test_estimated_bytes_positive(self, lake):
        assert lake.estimated_bytes() > 0

    def test_describe_fields(self, lake):
        stats = lake.describe()
        assert stats["tables"] == 2
        assert stats["attributes"] == 4
        assert 0.0 <= stats["numeric_attribute_ratio"] <= 1.0

    def test_describe_empty_lake(self):
        stats = DataLake("empty").describe()
        assert stats["tables"] == 0
        assert stats["arity_mean"] == 0.0

    def test_sample_smaller_than_lake(self, lake):
        sample = lake.sample(1, seed=0)
        assert len(sample) == 1

    def test_sample_larger_than_lake_returns_all(self, lake):
        sample = lake.sample(10)
        assert len(sample) == 2

    def test_directory_round_trip(self, lake, tmp_path):
        lake.to_directory(tmp_path / "lake_dir")
        loaded = DataLake.from_directory(tmp_path / "lake_dir")
        assert set(loaded.table_names) == set(lake.table_names)
        assert loaded.table("gp").column_names == ["Practice", "Patients"]
