"""Shared fixtures for the benchmark harness.

Each benchmark file regenerates one table or figure of the paper.  The
corpora and indexed engine suites are session-scoped: they are built once and
reused by every benchmark, mirroring how the paper indexes each repository
once and runs all queries against it.

Every benchmark records the series it produces under
``benchmarks/results/<name>.txt`` so the numbers can be inspected (and are
quoted in EXPERIMENTS.md) independently of pytest-benchmark's timing table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import pytest

from repro.core.config import D3LConfig
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.evaluation.experiments import build_engine_suite
from repro.evaluation.plots import ascii_line_chart
from repro.evaluation.reporting import render_rows

RESULTS_DIR = Path(__file__).parent / "results"

#: Answer sizes swept on the Synthetic corpus (the paper sweeps 5..350 on a
#: 5,000-table lake; scaled to the generated corpus size).
SYNTHETIC_KS = [5, 10, 20, 40, 60, 80]
#: Answer sizes swept on the real-world-style corpus (paper: 10..110).
REAL_KS = [5, 10, 20, 30, 40, 50]
#: Number of query targets averaged per data point (paper: 100).
NUM_TARGETS = 12


@pytest.fixture(scope="session")
def bench_config() -> D3LConfig:
    """The configuration used by every system in the benchmarks.

    Matches the paper's setup (LSH threshold 0.7, MinHash size 256) with a
    corpus-scaled candidate pool.
    """
    return D3LConfig(num_hashes=256, lsh_threshold=0.7, embedding_dimension=48)


@pytest.fixture(scope="session")
def synthetic_corpus():
    """The Synthetic corpus: tables derived from base tables by projection/selection."""
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=16,
            tables_per_base=8,
            base_rows=150,
            min_rows=30,
            max_rows=120,
            seed=101,
        )
    )


@pytest.fixture(scope="session")
def real_corpus():
    """The Smaller-Real-style corpus: dirty, inconsistently represented tables."""
    return generate_real_benchmark(
        RealBenchmarkConfig(
            num_families=16,
            tables_per_family=8,
            min_rows=30,
            max_rows=100,
            dirtiness=0.35,
            name="smaller_real",
            seed=202,
        )
    )


@pytest.fixture(scope="session")
def synthetic_suite(synthetic_corpus, bench_config):
    """D3L, TUS and Aurum indexed over the Synthetic corpus."""
    return build_engine_suite(
        synthetic_corpus,
        systems=("d3l", "tus", "aurum"),
        config=bench_config,
        train_weights=True,
        weight_training_targets=12,
        seed=7,
    )


@pytest.fixture(scope="session")
def real_suite(real_corpus, bench_config):
    """D3L, TUS and Aurum indexed over the real-world-style corpus."""
    return build_engine_suite(
        real_corpus,
        systems=("d3l", "tus", "aurum"),
        config=bench_config,
        train_weights=True,
        weight_training_targets=12,
        seed=7,
    )


def _figure_charts(rows: Sequence[Mapping[str, object]]) -> str:
    """ASCII charts for metric-vs-k series, when the rows have that shape."""
    rows = list(rows)
    if not rows or "k" not in rows[0]:
        return ""
    group_column = next(
        (column for column in ("system", "evidence", "variant") if column in rows[0]), None
    )
    if group_column is None:
        return ""
    charts = []
    for metric in ("precision", "recall", "coverage", "attribute_precision"):
        if metric in rows[0]:
            charts.append(
                ascii_line_chart(
                    rows, x="k", y=metric, group_by=group_column, title=f"{metric} vs k"
                )
            )
    return "\n\n".join(charts)


@pytest.fixture(scope="session")
def record_rows():
    """Persist (and echo) the series a benchmark produced.

    Metric-vs-k series additionally get ASCII charts appended to the result
    file, so the regenerated "figures" can be eyeballed without plotting
    libraries.
    """

    def _record(name: str, rows: Sequence[Mapping[str, object]], title: str) -> str:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        rendered = render_rows(list(rows), title=title)
        charts = _figure_charts(rows)
        contents = rendered + ("\n\n" + charts if charts else "") + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(contents, encoding="utf-8")
        print(f"\n{rendered}")
        return rendered

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiment runners are full parameter sweeps, so re-running them for
    statistical timing would multiply the benchmark wall-clock for no
    benefit; a single round is how the paper's wall-clock numbers are
    produced as well.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
