"""Relatedness ground truth for generated corpora.

Both benchmark generators record, while deriving tables, which tables (and
which attribute pairs) are related in the sense of Definition 1: an attribute
pair is related when both attributes contain values drawn from the same
semantic domain, and two tables are related when the generator derived them
from the same source (same base table for the Synthetic corpus, same topic
family for the real-style corpora) so that at least one attribute of one is
related to an attribute of the other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.lake.datalake import AttributeRef


@dataclass
class GroundTruth:
    """Table- and attribute-level relatedness ground truth.

    ``related_tables[t]`` is the set of tables related to table ``t`` (the
    relation is kept symmetric).  ``attribute_domains[ref]`` maps every
    attribute to its semantic domain name, which is what attribute-level
    relatedness is defined over.  ``subject_attributes[t]`` records the
    annotated subject attribute of each table (used to train and evaluate the
    subject-attribute classifier).
    """

    related_tables: Dict[str, Set[str]] = field(default_factory=dict)
    attribute_domains: Dict[AttributeRef, str] = field(default_factory=dict)
    subject_attributes: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_table(
        self,
        table_name: str,
        attribute_domains: Mapping[str, str],
        subject_attribute: Optional[str] = None,
    ) -> None:
        """Register a table with its per-attribute domains."""
        self.related_tables.setdefault(table_name, set())
        for column_name, domain in attribute_domains.items():
            self.attribute_domains[AttributeRef(table_name, column_name)] = domain
        if subject_attribute is not None:
            self.subject_attributes[table_name] = subject_attribute

    def mark_related(self, first: str, second: str) -> None:
        """Record that two tables are related (symmetric, irreflexive)."""
        if first == second:
            return
        self.related_tables.setdefault(first, set()).add(second)
        self.related_tables.setdefault(second, set()).add(first)

    def mark_group_related(self, table_names: Sequence[str]) -> None:
        """Mark every pair in ``table_names`` as mutually related."""
        names = list(table_names)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                self.mark_related(first, second)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def table_names(self) -> List[str]:
        """All tables known to the ground truth."""
        return list(self.related_tables)

    def is_related(self, first: str, second: str) -> bool:
        """True when the two tables are related (never true for identity)."""
        return second in self.related_tables.get(first, set())

    def related_to(self, table_name: str) -> Set[str]:
        """The set of tables related to ``table_name``."""
        return set(self.related_tables.get(table_name, set()))

    def answer_size(self, table_name: str) -> int:
        """Number of tables related to ``table_name``."""
        return len(self.related_tables.get(table_name, set()))

    def average_answer_size(self) -> float:
        """Mean answer size across all tables (the paper reports this per corpus)."""
        if not self.related_tables:
            return 0.0
        return sum(len(related) for related in self.related_tables.values()) / len(
            self.related_tables
        )

    def domain_of(self, ref: AttributeRef) -> Optional[str]:
        """The semantic domain of an attribute, when known."""
        return self.attribute_domains.get(ref)

    def are_attributes_related(self, first: AttributeRef, second: AttributeRef) -> bool:
        """Definition 1: attributes related iff drawn from the same domain."""
        first_domain = self.attribute_domains.get(first)
        second_domain = self.attribute_domains.get(second)
        if first_domain is None or second_domain is None:
            return False
        return first_domain == second_domain

    def related_target_attributes(
        self, target_table: str, source: AttributeRef
    ) -> Set[str]:
        """Target attributes of ``target_table`` related to a lake attribute."""
        source_domain = self.attribute_domains.get(source)
        if source_domain is None:
            return set()
        return {
            ref.column
            for ref, domain in self.attribute_domains.items()
            if ref.table == target_table and domain == source_domain
        }

    def table_attributes(self, table_name: str) -> List[AttributeRef]:
        """All attributes of a table known to the ground truth."""
        return [ref for ref in self.attribute_domains if ref.table == table_name]

    def subject_attribute_of(self, table_name: str) -> Optional[str]:
        """The annotated subject attribute of a table, when recorded."""
        return self.subject_attributes.get(table_name)

    def labelled_subject_attributes(self) -> List[Tuple[str, str]]:
        """(table name, subject attribute) pairs for classifier training."""
        return list(self.subject_attributes.items())

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation of the ground truth."""
        return {
            "related_tables": {
                table: sorted(related) for table, related in self.related_tables.items()
            },
            "attribute_domains": {
                str(ref): domain for ref, domain in self.attribute_domains.items()
            },
            "subject_attributes": dict(self.subject_attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GroundTruth":
        """Rebuild a ground truth from :meth:`to_dict` output."""
        truth = cls()
        for table, related in dict(data.get("related_tables", {})).items():
            truth.related_tables[table] = set(related)
        for ref_text, domain in dict(data.get("attribute_domains", {})).items():
            truth.attribute_domains[AttributeRef.parse(ref_text)] = str(domain)
        truth.subject_attributes = {
            table: str(subject)
            for table, subject in dict(data.get("subject_attributes", {})).items()
        }
        return truth

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the ground truth to ``path`` as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "GroundTruth":
        """Load a ground truth previously written with :meth:`to_json`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)
