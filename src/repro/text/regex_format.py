"""Format-describing regular expression strings (F evidence).

The paper grounds format evidence on six primitive lexical classes:

* ``C`` = ``[A-Z][a-z]+``  (capitalised word)
* ``U`` = ``[A-Z]+``        (upper-case run)
* ``L`` = ``[a-z]+``        (lower-case run)
* ``N`` = ``[0-9]+``        (digit run)
* ``A`` = ``[A-Za-z0-9]+``  (mixed alphanumeric run)
* ``P`` = punctuation and anything not caught above

Each value is tokenised, each token mapped to the *first* matching class in
the order above, and consecutive repetitions of the same symbol are collapsed
to ``<symbol>+`` — e.g. a UK postcode part ``M1 3BE`` yields ``A+``, and
``18 Portland Street`` yields ``NCC`` → ``NC+``.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Set

_CLASS_PATTERNS = (
    ("C", re.compile(r"[A-Z][a-z]+\Z")),
    ("U", re.compile(r"[A-Z]+\Z")),
    ("L", re.compile(r"[a-z]+\Z")),
    ("N", re.compile(r"[0-9]+\Z")),
    ("A", re.compile(r"[A-Za-z0-9]+\Z")),
)

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+|[^A-Za-z0-9\s]+")


def classify_token(token: str) -> str:
    """Return the primitive-class symbol of a single token."""
    for symbol, pattern in _CLASS_PATTERNS:
        if pattern.match(token):
            return symbol
    return "P"


def _collapse(symbols: Sequence[str]) -> str:
    """Collapse consecutive repeats: ``['N','C','C','P','P'] -> 'NC+P+'``."""
    collapsed: List[str] = []
    previous = None
    run_length = 0
    for symbol in symbols:
        if symbol == previous:
            run_length += 1
            continue
        if previous is not None:
            collapsed.append(previous + ("+" if run_length > 1 else ""))
        previous = symbol
        run_length = 1
    if previous is not None:
        collapsed.append(previous + ("+" if run_length > 1 else ""))
    return "".join(collapsed)


def format_string(value: str) -> str:
    """The format-describing string of a single attribute value."""
    if value is None:
        return ""
    tokens = _TOKEN_RE.findall(str(value).strip())
    if not tokens:
        return ""
    symbols = [classify_token(token) for token in tokens]
    return _collapse(symbols)


def format_set(values: Sequence[str]) -> Set[str]:
    """The rset of an attribute: format strings of every value in its extent."""
    result: Set[str] = set()
    for value in values:
        rendered = format_string(value)
        if rendered:
            result.add(rendered)
    return result
