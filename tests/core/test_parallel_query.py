"""Determinism harness for the process-parallel query fan-out.

Mirror of ``test_parallel_build.py`` for the query side: ``workers=1`` and
``workers=N`` runs of ``query_batch`` must produce indistinguishable
answers — identical rankings, distances, matches, and weights — including
after a persistence-v3 round-trip of the engine.
"""

import pytest

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.parallel import ParallelQueryExecutor
from repro.core.persistence import load_engine, save_engine
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)

from tests.core.test_batched_query import assert_identical_answers


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=4,
            tables_per_base=4,
            base_rows=50,
            min_rows=20,
            max_rows=40,
            seed=13,
        )
    )


@pytest.fixture(scope="module")
def engine(corpus):
    engine = D3L(
        config=D3LConfig(
            num_hashes=64, num_trees=8, min_candidates=20, embedding_dimension=16
        )
    )
    engine.index_lake(corpus.lake)
    return engine


class TestWorkerDeterminism:
    def test_workers_1_vs_4_identical(self, corpus, engine):
        for name in corpus.lake.table_names[::5]:
            target = corpus.lake.table(name)
            assert_identical_answers(
                engine.query_batch(target, k=5, workers=1),
                engine.query_batch(target, k=5, workers=4),
            )

    def test_more_workers_than_attributes(self, corpus, engine):
        target = corpus.lake.tables[0]
        assert_identical_answers(
            engine.query_batch(target, k=5, workers=1),
            engine.query_batch(target, k=5, workers=4 * target.arity),
        )

    def test_fanned_out_query_matches_sequential_oracle(self, corpus, engine):
        target = corpus.lake.tables[1]
        assert_identical_answers(
            engine.query(target, k=5),
            engine.query_batch(target, k=5, workers=3),
        )


class TestPersistenceRoundTrip:
    def test_loaded_engine_queries_identically_across_workers(
        self, corpus, engine, tmp_path
    ):
        path = save_engine(engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        for name in corpus.lake.table_names[::7]:
            target = corpus.lake.table(name)
            original = engine.query_batch(target, k=5, workers=1)
            assert_identical_answers(original, loaded.query_batch(target, k=5, workers=1))
            assert_identical_answers(original, loaded.query_batch(target, k=5, workers=4))
            assert_identical_answers(original, loaded.query(target, k=5))


class TestExecutorApi:
    def test_invalid_workers_rejected(self, engine):
        with pytest.raises(ValueError):
            ParallelQueryExecutor(engine.indexes, workers=0)

    def test_pool_reuse_stays_identical(self, corpus):
        # Repeated fanned-out queries reuse one worker pool (the indexes are
        # shipped once); answers must stay identical to the oracle each time.
        engine = D3L(
            config=D3LConfig(
                num_hashes=64, num_trees=8, min_candidates=20, embedding_dimension=16
            )
        )
        engine.index_lake(corpus.lake)
        targets = [corpus.lake.tables[0], corpus.lake.tables[3]]
        for _ in range(2):
            for target in targets:
                assert_identical_answers(
                    engine.query(target, k=4),
                    engine.query_batch(target, k=4, workers=2),
                )
        assert list(engine._query_executors) == [2]

    def test_lake_mutation_refreshes_worker_pools(self, corpus):
        # The worker pool snapshots the indexes; indexing or removing a table
        # keeps the pool alive (the mutation ships as a per-table delta with
        # the next fanned-out task) while answers must see the new lake.
        engine = D3L(
            config=D3LConfig(
                num_hashes=64, num_trees=8, min_candidates=20, embedding_dimension=16
            )
        )
        engine.index_lake(corpus.lake)
        target = corpus.lake.tables[1]
        engine.query_batch(target, k=4, workers=2)
        assert engine._query_executors
        executor = engine._query_executors[2]
        pool_before = executor._pool
        extra = corpus.lake.tables[2].with_name("zz_brand_new_table")
        engine.index_table(extra)
        # Single-table mutations no longer tear down the executor cache.
        assert engine._query_executors
        after = engine.query_batch(extra, k=4, exclude_self=False, workers=2)
        # The delta-refreshed pool must see the new table (its byte-identical
        # source ties with it and wins the name tie-break, so check the top
        # two) without having been recreated.
        assert executor._pool is pool_before
        assert "zz_brand_new_table" in after.table_names(2)
        assert_identical_answers(engine.query(extra, k=4, exclude_self=False), after)
        engine.remove_table("zz_brand_new_table")
        assert engine._query_executors
        assert_identical_answers(
            engine.query(target, k=4),
            engine.query_batch(target, k=4, workers=2),
        )
        after_removal = engine.query_batch(extra, k=4, exclude_self=False, workers=2)
        assert "zz_brand_new_table" not in after_removal.table_names(4)
        # Bulk re-indexing still invalidates wholesale.
        engine.index_lake(corpus.lake)
        assert not engine._query_executors

    def test_cli_workers_route(self, corpus, engine):
        # query_batch(workers=None) and workers=1 run the same in-process path.
        target = corpus.lake.tables[2]
        assert_identical_answers(
            engine.query_batch(target, k=4),
            engine.query_batch(target, k=4, workers=1),
        )
