"""Tokenisation of attribute values.

Algorithm 1 of the paper construes an attribute extent as a set of documents:
each value is a document, each document is a set of *parts* (split at
punctuation characters), and each part is a set of words.  The helpers here
implement exactly that decomposition.
"""

from __future__ import annotations

import re
from typing import List

#: Characters that split a value into parts.
_PART_SPLIT_RE = re.compile(r"[.,;:/\-|()\[\]{}]+")
#: Characters that split a part into words.
_WORD_SPLIT_RE = re.compile(r"[^A-Za-z0-9]+")


def split_parts(value: str) -> List[str]:
    """Split a value into parts at punctuation characters.

    Empty parts are dropped.  ``'18 Portland Street, M1 3BE'`` becomes
    ``['18 Portland Street', ' M1 3BE']`` (whitespace inside parts is kept so
    word splitting can act on it).
    """
    if not value:
        return []
    return [part for part in _PART_SPLIT_RE.split(value) if part.strip()]


def tokenize_parts(value: str) -> List[List[str]]:
    """Split a value into parts, each part into lower-cased words."""
    parts = []
    for part in split_parts(value):
        words = [word.lower() for word in _WORD_SPLIT_RE.split(part) if word]
        if words:
            parts.append(words)
    return parts


def tokenize(value: str) -> List[str]:
    """All lower-cased word tokens of a value, in order of appearance."""
    tokens: List[str] = []
    for words in tokenize_parts(value):
        tokens.extend(words)
    return tokens


def is_numeric_token(token: str) -> bool:
    """True when a token is purely numeric (digits, optional decimal point)."""
    return bool(re.fullmatch(r"[0-9]+(\.[0-9]+)?", token))
