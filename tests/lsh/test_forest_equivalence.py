"""Equivalence of the vectorized LSH backend with the scalar reference.

The vectorized forest/distance paths must return byte-identical signatures
and identical ``(key, distance)`` rankings to the scalar seed implementation
kept in ``repro.lsh.reference``; these tests pin that contract on a seeded
synthetic lake, and property tests cover insert/remove/re-insert consistency
under tombstone compaction.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lsh.hashing import HashFamily, clear_token_hash_cache, hash_token, hash_tokens
from repro.lsh.lsh_forest import LSHForest
from repro.lsh.minhash import MinHashFactory, batch_jaccard_distances
from repro.lsh.random_projection import RandomProjectionFactory, batch_cosine_distances
from repro.lsh.reference import (
    ScalarLSHForest,
    scalar_hash_tokens,
    scalar_ks_statistic,
    scalar_signature_distance,
)
from repro.stats.ks import ks_statistic, ks_statistic_sorted

NUM_HASHES = 128
NUM_TREES = 8


def _synthetic_lake(num_items, seed, num_families=12, family_size=40, noise=8):
    """Seeded token sets grouped into overlapping families (near-neighbors)."""
    rng = random.Random(seed)
    families = [
        {f"fam{f}-tok{t}" for t in range(family_size)} for f in range(num_families)
    ]
    items = []
    for index in range(num_items):
        base = families[rng.randrange(num_families)]
        kept = {token for token in base if rng.random() > 0.2}
        extra = {f"item{index}-noise{j}" for j in range(rng.randrange(noise))}
        items.append((f"attr{index}", kept | extra))
    return items


@pytest.fixture
def factory():
    return MinHashFactory(num_perm=NUM_HASHES, seed=5)


@pytest.fixture
def lake(factory):
    items = _synthetic_lake(num_items=60, seed=17)
    return [(key, factory.from_tokens(tokens)) for key, tokens in items]


def _paired_forests(lake):
    vectorized = LSHForest(num_hashes=NUM_HASHES, num_trees=NUM_TREES)
    scalar = ScalarLSHForest(num_hashes=NUM_HASHES, num_trees=NUM_TREES)
    for key, signature in lake:
        vectorized.insert(key, signature.hashvalues)
        scalar.insert(key, signature.hashvalues)
    return vectorized, scalar


class TestSignatureEquivalence:
    def test_hash_tokens_matches_scalar_reference(self):
        rng = random.Random(3)
        for _ in range(20):
            tokens = {f"tok{rng.randrange(200)}" for _ in range(rng.randrange(1, 40))}
            fast = hash_tokens(tokens, seed=9)
            reference = scalar_hash_tokens(tokens, seed=9)
            assert np.array_equal(np.sort(fast), np.sort(reference))

    def test_hash_tokens_cache_returns_identical_values(self):
        clear_token_hash_cache()
        tokens = {f"cached{i}" for i in range(50)}
        first = np.sort(hash_tokens(tokens, seed=2))
        second = np.sort(hash_tokens(tokens, seed=2))  # fully cached pass
        assert np.array_equal(first, second)
        assert all(
            hash_token(token, seed=2) in set(first.tolist()) for token in tokens
        )

    def test_minhash_signatures_byte_identical(self, factory):
        family = HashFamily(NUM_HASHES, seed=5)
        for _, tokens in _synthetic_lake(num_items=15, seed=23):
            fast = factory.from_tokens(tokens).hashvalues
            reference = family.minhash_values(scalar_hash_tokens(tokens, seed=5))
            assert fast.tobytes() == reference.tobytes()


class TestForestEquivalence:
    def test_candidates_identical_across_ks(self, lake):
        vectorized, scalar = _paired_forests(lake)
        for key, signature in lake[::5]:
            for k in (1, 3, 10, 25, 200):
                assert vectorized.query(signature.hashvalues, k) == scalar.query(
                    signature.hashvalues, k
                ), f"divergence at key={key} k={k}"

    def test_candidates_identical_with_exclude(self, lake):
        vectorized, scalar = _paired_forests(lake)
        for key, signature in lake[::7]:
            assert vectorized.query(
                signature.hashvalues, 10, exclude=key
            ) == scalar.query(signature.hashvalues, 10, exclude=key)

    def test_query_all_identical(self, lake):
        vectorized, scalar = _paired_forests(lake)
        _, signature = lake[0]
        assert vectorized.query_all(signature.hashvalues) == scalar.query_all(
            signature.hashvalues
        )

    def test_rankings_identical(self, lake):
        """(key, distance) rankings — the contract the discovery engine needs."""
        vectorized, scalar = _paired_forests(lake)
        signatures = dict(lake)

        def ranking(forest, key, signature):
            candidates = forest.query(signature.hashvalues, 20, exclude=key)
            return sorted(
                (scalar_signature_distance(signature, signatures[other]), other)
                for other in candidates
            )

        for key, signature in lake[::6]:
            assert ranking(vectorized, key, signature) == ranking(scalar, key, signature)

    def test_equivalence_after_removals(self, lake):
        vectorized, scalar = _paired_forests(lake)
        for key, _ in lake[::3]:
            vectorized.remove(key)
            scalar.remove(key)
        for key, signature in lake[1::4]:
            assert vectorized.query(signature.hashvalues, 15) == scalar.query(
                signature.hashvalues, 15
            )

    def test_equivalence_under_compaction(self, factory):
        """Enough removals to trigger tombstone compaction, then re-inserts."""
        items = _synthetic_lake(num_items=80, seed=31)
        lake = [(key, factory.from_tokens(tokens)) for key, tokens in items]
        vectorized, scalar = _paired_forests(lake)
        # Remove well over half the rows: compaction fires in every tree.
        for key, _ in lake[:50]:
            vectorized.remove(key)
            scalar.remove(key)
        # Re-insert a third of the removed items.
        for key, signature in lake[:17]:
            vectorized.insert(key, signature.hashvalues)
            scalar.insert(key, signature.hashvalues)
        assert len(vectorized) == len(scalar)
        for key, signature in lake[::4]:
            assert vectorized.query(signature.hashvalues, 12) == scalar.query(
                signature.hashvalues, 12
            )


class TestBatchDistanceEquivalence:
    def test_jaccard_batch_matches_pairwise(self, factory, lake):
        query = lake[0][1]
        matrix = np.vstack([signature.hashvalues for _, signature in lake])
        empty_rows = np.array([signature.is_empty() for _, signature in lake])
        batched = batch_jaccard_distances(
            query.hashvalues, matrix, query_empty=query.is_empty(), empty_rows=empty_rows
        )
        for row, (_, signature) in enumerate(lake):
            assert batched[row] == query.jaccard_distance(signature)

    def test_jaccard_batch_empty_conventions(self, factory):
        empty = factory.empty()
        full = factory.from_tokens({"a", "b", "c"})
        matrix = np.vstack([empty.hashvalues, full.hashvalues])
        flags = np.array([True, False])
        batched = batch_jaccard_distances(
            full.hashvalues, matrix, query_empty=False, empty_rows=flags
        )
        assert batched[0] == 1.0  # empty stored row
        assert batch_jaccard_distances(
            empty.hashvalues, matrix, query_empty=True, empty_rows=flags
        ).tolist() == [1.0, 1.0]

    def test_cosine_batch_matches_pairwise(self):
        rng = np.random.default_rng(11)
        projections = RandomProjectionFactory(num_bits=64, seed=3)
        signatures = [
            projections.from_vector(rng.standard_normal(16)) for _ in range(30)
        ]
        signatures.append(projections.from_vector(np.zeros(16)))
        query = signatures[0]
        matrix = np.vstack([signature.bits for signature in signatures])
        zero_rows = np.array([signature.is_zero for signature in signatures])
        batched = batch_cosine_distances(
            query.bits, matrix, query_zero=query.is_zero, zero_rows=zero_rows
        )
        for row, signature in enumerate(signatures):
            assert batched[row] == query.cosine_distance(signature)


class TestKSFastPath:
    def test_sorted_fast_path_matches_reference(self):
        rng = np.random.default_rng(29)
        for _ in range(25):
            a = rng.normal(size=rng.integers(1, 80)).tolist()
            b = (rng.normal(loc=rng.uniform(-1, 1), size=rng.integers(1, 80))).tolist()
            a_sorted = np.sort(np.asarray(a, dtype=np.float64))
            b_sorted = np.sort(np.asarray(b, dtype=np.float64))
            expected = scalar_ks_statistic(a, b)
            assert ks_statistic(a, b) == expected
            assert ks_statistic_sorted(a_sorted, b_sorted) == expected

    def test_sorted_fast_path_empty_samples(self):
        empty = np.empty(0, dtype=np.float64)
        values = np.array([1.0, 2.0])
        assert ks_statistic_sorted(empty, values) == 1.0
        assert ks_statistic_sorted(values, empty) == 1.0


# --------------------------------------------------------------------- #
# property tests: insert / remove / re-insert under tombstone compaction
# --------------------------------------------------------------------- #

_PROPERTY_FACTORY = MinHashFactory(num_perm=64, seed=13)

operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11), st.booleans()),
    min_size=1,
    max_size=60,
)


class TestInsertRemoveProperties:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_tracks_scalar_model(self, ops):
        vectorized = LSHForest(num_hashes=64, num_trees=4)
        scalar = ScalarLSHForest(num_hashes=64, num_trees=4)
        versions = {}
        for item_id, is_insert in ops:
            key = f"item{item_id}"
            if is_insert:
                version = versions.get(key, 0) + 1
                versions[key] = version
                tokens = {f"{key}-v{version}-t{t}" for t in range(12)}
                signature = _PROPERTY_FACTORY.from_tokens(tokens).hashvalues
                vectorized.insert(key, signature)
                scalar.insert(key, signature)
            else:
                vectorized.remove(key)
                scalar.remove(key)
        assert len(vectorized) == len(scalar)
        assert set(vectorized.keys()) == set(scalar.keys())
        for key in vectorized.keys():
            stored = vectorized.signature(key)
            assert np.array_equal(stored, scalar.signature(key))
            assert vectorized.query(stored, 8) == scalar.query(stored, 8)

    @given(st.integers(min_value=20, max_value=48), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_remove_then_reinsert_is_consistent(self, count, seed):
        rng = random.Random(seed)
        forest = LSHForest(num_hashes=64, num_trees=4)
        signatures = {}
        for index in range(count):
            key = f"k{index}"
            tokens = {f"{key}-{seed}-{t}" for t in range(10)}
            signatures[key] = _PROPERTY_FACTORY.from_tokens(tokens).hashvalues
            forest.insert(key, signatures[key])
        removed = rng.sample(sorted(signatures), k=count * 3 // 4)
        for key in removed:
            forest.remove(key)
        assert len(forest) == count - len(removed)
        for key in removed:
            assert key not in forest
            assert key not in forest.query_all(signatures[key])
        for key in removed:
            forest.insert(key, signatures[key])
        assert len(forest) == count
        for key, signature in signatures.items():
            assert forest.query(signature, 1) == [key] or key in forest.query(
                signature, count
            )
