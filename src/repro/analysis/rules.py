"""The R1–R5 invariant rules behind ``repro check``.

Each rule encodes one unwritten contract the performance work rests on
(see docs/api.md "Static analysis & sanitizers" for the user-facing table):

* **R1 zero-copy discipline** — mutations of ``SignatureMatrix`` storage
  must be dominated by ``_ensure_writable()`` (copy-on-write promotion),
  and every array built on the snapshot attach path must be frozen with
  ``flags.writeable = False``.
* **R2 determinism** — kernel/sharding modules must not iterate unordered
  sets, and nothing under ``core/``/``lsh/`` may consult wall clocks,
  global RNG state, or the PYTHONHASHSEED-dependent builtin ``hash()``.
* **R3 resource lifecycle** — shared-memory segments, worker pools, and
  CLI engine/session/server handles must be released on every path
  (``with``, ``try/finally``, a paired ``close`` in the owning class, a
  ``weakref.finalize`` backstop, or ownership transfer via ``return``).
* **R4 wire parity** — every field of a wire dataclass must appear in both
  directions of its serializer pair, so nothing silently drops off the
  wire.
* **R5 deprecation hygiene** — anything documented ``.. deprecated::``
  must actually emit a ``DeprecationWarning``.

The rules are syntactic by design: they over-approximate the dynamic
contracts just enough to be cheap and reviewable, and the
``# repro-check: disable=Rn`` pragma is the documented escape hatch for
the rare justified exception.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import (
    ModuleUnderCheck,
    Violation,
    path_matches,
    register,
)


# --------------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------------- #


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _enclosing(
    node: ast.AST, parents: Dict[ast.AST, ast.AST], kinds: Tuple[type, ...]
) -> Optional[ast.AST]:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, kinds):
            return current
        current = parents.get(current)
    return None


# --------------------------------------------------------------------------- #
# R1 — zero-copy discipline
# --------------------------------------------------------------------------- #

#: Attribute names backing :class:`~repro.core.indexes.SignatureMatrix`
#: storage; subscript writes to these are copy-on-write hazards.
_COW_ARRAYS = {"_matrix", "_flags"}


@register(
    "R1",
    "zero-copy-discipline",
    "SignatureMatrix storage writes must follow _ensure_writable(); "
    "attach-path arrays must be frozen read-only",
    patterns=("core/indexes.py", "core/shared.py"),
)
def check_zero_copy(module: ModuleUnderCheck) -> Iterable[Violation]:
    for func in _functions(module.tree):
        if func.name == "_ensure_writable":
            continue
        yield from _check_cow_writes(module, func)
        if "attach" in func.name:
            yield from _check_attach_freeze(module, func)


def _check_cow_writes(module: ModuleUnderCheck, func: ast.AST) -> Iterator[Violation]:
    guard_line: Optional[int] = None
    for call in _calls(func):
        dotted = _dotted_name(call.func) or ""
        if dotted.endswith("_ensure_writable"):
            guard_line = call.lineno if guard_line is None else min(guard_line, call.lineno)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            for sub in ast.walk(target):
                if not isinstance(sub, ast.Subscript):
                    continue
                if not isinstance(sub.value, ast.Attribute):
                    continue
                if sub.value.attr not in _COW_ARRAYS:
                    continue
                if guard_line is None or guard_line > node.lineno:
                    if module.suppressed("R1", node.lineno):
                        continue
                    yield module.violation(
                        "R1",
                        node.lineno,
                        f"write to {sub.value.attr}[...] in {func.name}() is not "
                        "dominated by an _ensure_writable() call (copy-on-write "
                        "promotion for shared views)",
                    )


def _check_attach_freeze(module: ModuleUnderCheck, func: ast.AST) -> Iterator[Violation]:
    frozen: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            # `<name>.flags.writeable = ...` freezes <name>.
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
                and isinstance(target.value.value, ast.Name)
            ):
                frozen.add(target.value.value.id)
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        has_frombuffer = any(
            isinstance(call.func, (ast.Attribute, ast.Name))
            and (_dotted_name(call.func) or "").rsplit(".", 1)[-1] == "frombuffer"
            for call in _calls(node.value)
        )
        if not has_frombuffer:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id not in frozen:
                if module.suppressed("R1", node.lineno):
                    continue
                yield module.violation(
                    "R1",
                    node.lineno,
                    f"attach-path array {target.id!r} in {func.name}() is never "
                    "frozen with .flags.writeable = False",
                )


# --------------------------------------------------------------------------- #
# R2 — determinism
# --------------------------------------------------------------------------- #

#: Modules whose iteration order feeds returned rankings or shard
#: assignment; bare set iteration here breaks `workers=1 == workers=N`.
_KERNEL_PATTERNS = ("core/parallel.py", "core/joins.py", "lsh/*.py")

#: Wall-clock entry points banned from deterministic code.
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: numpy.random constructors that are fine as long as they are seeded.
_SEEDED_RNG_FACTORIES = {"default_rng", "Generator", "PCG64", "SeedSequence", "RandomState"}


@register(
    "R2",
    "determinism",
    "no unordered-set iteration in kernel/sharding modules; no wall clocks, "
    "global RNG state, or builtin hash() under core//lsh/",
    patterns=("core/*.py", "lsh/*.py"),
)
def check_determinism(module: ModuleUnderCheck) -> Iterable[Violation]:
    parents = _parent_map(module.tree)
    if path_matches(module.path, _KERNEL_PATTERNS):
        yield from _check_set_iteration(module)
    random_aliases, random_names = _random_imports(module.tree)
    for call in _calls(module.tree):
        dotted = _dotted_name(call.func) or ""
        line = call.lineno
        if module.suppressed("R2", line):
            continue
        if dotted in _WALL_CLOCKS:
            yield module.violation(
                "R2", line, f"wall-clock call {dotted}() in deterministic code"
            )
            continue
        violation = _rng_violation(dotted, call, random_aliases, random_names)
        if violation:
            yield module.violation("R2", line, violation)
            continue
        if isinstance(call.func, ast.Name) and call.func.id == "hash":
            enclosing = _enclosing(call, parents, (ast.FunctionDef, ast.AsyncFunctionDef))
            if enclosing is not None and enclosing.name == "__hash__":
                continue  # the dunder protocol is process-local by contract
            yield module.violation(
                "R2",
                line,
                "builtin hash() depends on PYTHONHASHSEED for str keys; use "
                "a keyed stable hash (e.g. lsh.hashing.stable_uint64)",
            )


def _random_imports(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """(module aliases of stdlib ``random``, names imported from it)."""
    aliases: Set[str] = set()
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return aliases, names


def _rng_violation(
    dotted: str, call: ast.Call, random_aliases: Set[str], random_names: Set[str]
) -> Optional[str]:
    head, _, tail = dotted.partition(".")
    if head in random_aliases and tail:
        return f"stdlib global RNG call {dotted}() (unseeded process-wide state)"
    if not tail and dotted in random_names:
        return f"stdlib global RNG call {dotted}() (unseeded process-wide state)"
    if ".random." in f".{dotted}." and "random" != dotted:
        parts = dotted.split(".")
        if "random" in parts[:-1]:
            final = parts[-1]
            if final == "default_rng":
                if not call.args and not call.keywords:
                    return "np.random.default_rng() without an explicit seed"
                return None
            if final in _SEEDED_RNG_FACTORIES:
                return None
            return (
                f"legacy numpy global-state RNG call {dotted}(); construct a "
                "seeded Generator instead"
            )
    return None


def _check_set_iteration(module: ModuleUnderCheck) -> Iterator[Violation]:
    for func in _functions(module.tree):
        set_vars = _set_typed_locals(func)
        for node in ast.walk(func):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expr(candidate, set_vars):
                    if module.suppressed("R2", candidate.lineno):
                        continue
                    yield module.violation(
                        "R2",
                        candidate.lineno,
                        f"iteration over an unordered set in {func.name}() feeds "
                        "ranking/shard order; wrap it in sorted(...)",
                    )


def _set_typed_locals(func: ast.AST) -> Set[str]:
    """Local names assigned a set expression somewhere in ``func``.

    Rebinding to a non-set expression clears the mark, so
    ``x = sorted(x)`` launders a set into a deterministic list.
    """
    marked: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if _is_set_expr(node.value, marked):
            marked.add(target.id)
        else:
            marked.discard(target.id)
    return marked


def _is_set_expr(node: ast.expr, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra (`a | b`, `a & b`, `a - b`) over known sets
        return _is_set_expr(node.left, set_vars) and _is_set_expr(node.right, set_vars)
    return False


# --------------------------------------------------------------------------- #
# R3 — resource lifecycle
# --------------------------------------------------------------------------- #

#: Call tails that allocate an OS-backed resource wherever they appear.
_POOL_TAILS = {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool", "ThreadPool"}

#: Execution-backend factories and process-serving worker spawn sites.  A
#: backend owns pools and shared-memory snapshots; a serving worker owns a
#: live child process — both must be scoped exactly like a raw pool.
_BACKEND_FACTORY_TAILS = {
    "create_backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "_ServingWorker",
    "Process",
}

#: Engine/session/server factories whose handles the CLI must scope.
_CLI_FACTORY_TAILS = {
    "D3L",
    "DiscoverySession",
    "DiscoveryServer",
    "load_engine",
    "load_session",
    "_load_engine_or_fail",
}

#: Method names that release a tracked resource.
_CLOSER_ATTRS = {
    "close",
    "unlink",
    "shutdown",
    "terminate",
    "join",
    "release",
    "server_close",
    "stop",
}


@register(
    "R3",
    "resource-lifecycle",
    "SharedMemory(create=True), pools, execution backends, serving worker "
    "processes, and CLI engine/session handles must be released via "
    "with/try-finally/close/finalize in the same scope or class",
    patterns=("cli.py", "core/*.py"),
)
def check_lifecycle(module: ModuleUnderCheck) -> Iterable[Violation]:
    parents = _parent_map(module.tree)
    is_cli = path_matches(module.path, ("cli.py",))
    for call in _calls(module.tree):
        kind = _resource_kind(call, is_cli)
        if kind is None:
            continue
        if module.suppressed("R3", call.lineno):
            continue
        if _resource_is_scoped(call, parents):
            continue
        yield module.violation(
            "R3",
            call.lineno,
            f"{kind} is constructed without a with/try-finally/close pairing "
            "in its scope (resource can leak on an exception path)",
        )


def _resource_kind(call: ast.Call, is_cli: bool) -> Optional[str]:
    dotted = _dotted_name(call.func)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail == "SharedMemory":
        for keyword in call.keywords:
            if (
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return "SharedMemory(create=True)"
        return None
    if tail in _POOL_TAILS and not dotted.startswith("self."):
        return f"worker pool {tail}(...)"
    if tail in _BACKEND_FACTORY_TAILS and not dotted.startswith("self."):
        return f"execution backend/worker {tail}(...)"
    if is_cli and tail in _CLI_FACTORY_TAILS:
        return f"engine/session handle {tail}(...)"
    return None


def _resource_is_scoped(call: ast.Call, parents: Dict[ast.AST, ast.AST]) -> bool:
    # (a) the call is (inside) a `with ...:` context expression
    node: ast.AST = call
    current = parents.get(node)
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(current, ast.withitem):
            return True
        if isinstance(current, ast.Return):
            return True  # ownership transferred to the caller
        node, current = current, parents.get(current)
    func = _enclosing(call, parents, (ast.FunctionDef, ast.AsyncFunctionDef))
    if func is None:
        return False
    binding = _binding_target(call, parents)
    if binding is None:
        return False
    if isinstance(binding, ast.Name):
        return _name_is_released(binding.id, func)
    if (
        isinstance(binding, ast.Attribute)
        and isinstance(binding.value, ast.Name)
        and binding.value.id == "self"
    ):
        owner = _enclosing(call, parents, (ast.ClassDef,))
        if owner is not None:
            return _class_releases_attribute(owner, binding.attr, func)
    return False


def _binding_target(call: ast.Call, parents: Dict[ast.AST, ast.AST]) -> Optional[ast.expr]:
    """The single Assign target the call's value lands in, if any."""
    node: ast.AST = call
    current = parents.get(node)
    while current is not None and not isinstance(current, (ast.stmt,)):
        node, current = current, parents.get(current)
    if isinstance(current, ast.Assign) and len(current.targets) == 1:
        return current.targets[0]
    return None


def _name_is_released(name: str, func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node.value)
            ):
                return True  # ownership transfer
        if isinstance(node, ast.Try):
            cleanup_bodies = list(node.finalbody)
            for handler in node.handlers:
                cleanup_bodies.extend(handler.body)
            for stmt in cleanup_bodies:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True  # finally/except path touches the handle
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func) or ""
            if dotted.rsplit(".", 1)[-1] == "finalize":
                for arg in node.args:
                    if any(
                        isinstance(sub, ast.Name) and sub.id == name
                        for sub in ast.walk(arg)
                    ):
                        return True  # weakref.finalize backstop
    return False


def _class_releases_attribute(owner: ast.ClassDef, attr: str, creator: ast.AST) -> bool:
    """Whether any *other* scope of ``owner`` releases ``self.<attr>``."""
    for node in ast.walk(owner):
        if node is creator:
            continue
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func) or ""
            parts = dotted.split(".")
            if (
                len(parts) >= 3
                and parts[0] == "self"
                and parts[1] == attr
                and parts[-1] in _CLOSER_ATTRS
            ):
                return True
            if parts[-1] == "finalize":
                for arg in ast.walk(node):
                    if (
                        isinstance(arg, ast.Attribute)
                        and arg.attr == attr
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "self"
                    ):
                        return True
    # the creator function itself may register the finalize backstop
    for node in ast.walk(creator):
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func) or ""
            if dotted.rsplit(".", 1)[-1] == "finalize":
                return True
    return False


# --------------------------------------------------------------------------- #
# R4 — wire parity
# --------------------------------------------------------------------------- #

#: Serializer-pair suffixes checked for field parity.
_WIRE_SUFFIXES = (("_to_dict", "_from_dict"), ("_to_wire", "_from_wire"))


@register(
    "R4",
    "wire-parity",
    "every field of a wire dataclass must appear in both directions of its "
    "to_dict/from_dict (or to_wire/from_wire) serializer pair",
    patterns=("core/api.py",),
)
def check_wire_parity(module: ModuleUnderCheck) -> Iterable[Violation]:
    project = module.project
    dataclasses = project.dataclass_fields() if project else {}
    constants = _string_tuple_constants(module.tree)
    # class-level to_dict/from_dict pairs
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "to_dict" in methods and "from_dict" in methods:
            fields = dataclasses.get(node.name)
            if fields:
                yield from _parity_violations(
                    module,
                    node.name,
                    fields,
                    methods["to_dict"],
                    methods["from_dict"],
                    constants,
                )
    # module-level serializer function pairs
    functions = {
        stmt.name: stmt
        for stmt in module.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for to_suffix, from_suffix in _WIRE_SUFFIXES:
        for name, to_fn in functions.items():
            if not name.endswith(to_suffix):
                continue
            from_name = name[: -len(to_suffix)] + from_suffix
            from_fn = functions.get(from_name)
            if from_fn is None:
                continue
            target = _constructed_dataclass(from_fn, dataclasses)
            if target is None:
                continue
            yield from _parity_violations(
                module, target, dataclasses[target], to_fn, from_fn, constants
            )


def _string_tuple_constants(tree: ast.Module) -> Dict[str, Set[str]]:
    """Module-level ``NAME = ("a", "b", ...)`` constants, for key tables."""
    constants: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
            strings = {
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            }
            if strings and len(strings) == len(node.value.elts):
                constants[target.id] = strings
    return constants


def _constructed_dataclass(
    func: ast.AST, dataclasses: Dict[str, List[str]]
) -> Optional[str]:
    for call in _calls(func):
        if isinstance(call.func, ast.Name) and call.func.id in dataclasses:
            if dataclasses[call.func.id]:
                return call.func.id
    return None


def _field_mentions(func: ast.AST, constants: Dict[str, Set[str]]) -> Set[str]:
    mentions: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentions.add(node.value)
        elif isinstance(node, ast.Attribute):
            mentions.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            mentions.add(node.arg)
        elif isinstance(node, ast.Name) and node.id in constants:
            mentions |= constants[node.id]
    return mentions


def _parity_violations(
    module: ModuleUnderCheck,
    class_name: str,
    fields: Sequence[str],
    to_fn: ast.AST,
    from_fn: ast.AST,
    constants: Dict[str, Set[str]],
) -> Iterator[Violation]:
    to_mentions = _field_mentions(to_fn, constants)
    from_mentions = _field_mentions(from_fn, constants)
    for field in fields:
        for fn, mentions in ((to_fn, to_mentions), (from_fn, from_mentions)):
            if field not in mentions:
                if module.suppressed("R4", fn.lineno):
                    continue
                yield module.violation(
                    "R4",
                    fn.lineno,
                    f"field {class_name}.{field} does not appear in "
                    f"{fn.name}() — it would silently drop off the wire",
                )


# --------------------------------------------------------------------------- #
# R5 — deprecation hygiene
# --------------------------------------------------------------------------- #


@register(
    "R5",
    "deprecation-hygiene",
    "anything documented '.. deprecated::' must emit a DeprecationWarning",
    patterns=("*.py",),
)
def check_deprecation(module: ModuleUnderCheck) -> Iterable[Violation]:
    for func in _functions(module.tree):
        docstring = ast.get_docstring(func) or ""
        if ".. deprecated" not in docstring.lower():
            continue
        if _emits_deprecation_warning(func):
            continue
        if module.suppressed("R5", func.lineno):
            continue
        yield module.violation(
            "R5",
            func.lineno,
            f"{func.name}() is documented '.. deprecated::' but never emits "
            "a DeprecationWarning",
        )


def _emits_deprecation_warning(func: ast.AST) -> bool:
    for call in _calls(func):
        dotted = _dotted_name(call.func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        if "deprecat" in tail.lower():
            return True  # helper like _warn_deprecated(...)
        if tail == "warn":
            for node in ast.walk(call):
                if isinstance(node, ast.Name) and node.id == "DeprecationWarning":
                    return True
                if isinstance(node, ast.Attribute) and node.attr == "DeprecationWarning":
                    return True
    return False
